"""Chaos search acceptance: a fixed-seed batch over every profile.

Three gates, all blocking in CI:

* **Coverage with zero violations** -- thirty generated schedules (six
  profiles x five seeds) run against the dgram-pair scenario, spanning
  at least five distinct fault kinds, and every invariant oracle holds
  on every run.
* **End-to-end determinism** -- the same ``(seed, profile, scenario)``
  triple produces a byte-identical schedule and the same verdict
  across two fresh searches.
* **Shrinking** -- a 14-event schedule failing the synthetic
  partition-budget oracle reduces to its 2-event core, and the written
  artifact replays to the same verdict.

Writes the soak metrics to BENCH_PR10.json at the repo root (uploaded
by the CI ``chaos-search`` job).
"""

import json
import time
from pathlib import Path

from repro.chaos.artifact import (
    build_artifact,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.chaos.generator import generate_plan
from repro.chaos.oracles import run_oracles, violated_names
from repro.chaos.profiles import PROFILES
from repro.chaos.scenario import DgramPairScenario, run_scenario
from repro.chaos.search import search
from repro.chaos.shrink import is_subsequence, shrink_plan
from repro.faults.plan import FaultPlan

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR10.json"

SEEDS = range(5)
CLUSTER_SEED = 7


def _record_bench(key, value):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = value
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_fixed_seed_batch_has_full_coverage_and_zero_violations():
    report = search(
        DgramPairScenario(),
        profiles=sorted(PROFILES),
        seeds=SEEDS,
        cluster_seed=CLUSTER_SEED,
    )
    assert report["schedules"] >= 25
    assert report["kinds_covered"] >= 5, report["coverage"]
    assert report["violations"] == 0, report["failures"]
    _record_bench(
        "chaos_search_batch",
        {
            "schedules": report["schedules"],
            "events_injected": report["events_injected"],
            "coverage": report["coverage"],
            "kinds_covered": report["kinds_covered"],
            "violations": report["violations"],
            "schedules_per_hour": report["schedules_per_hour"],
            "elapsed_seconds": report["elapsed_seconds"],
        },
    )


def test_search_is_deterministic_end_to_end():
    """Same (seed, profile, scenario) => byte-identical schedule and
    the same verdict, across two completely fresh searches."""
    scenario = DgramPairScenario(sends=12)
    surface = scenario.surface(log_directory=None)
    plans_a = [generate_plan(s, "mixed", surface).to_json() for s in range(3)]
    plans_b = [generate_plan(s, "mixed", surface).to_json() for s in range(3)]
    assert plans_a == plans_b

    def stripped(report):
        return {
            key: value
            for key, value in report.items()
            if key not in ("elapsed_seconds", "schedules_per_hour")
        }

    first = search(scenario, profiles=("mixed",), seeds=range(3))
    second = search(scenario, profiles=("mixed",), seeds=range(3))
    assert stripped(first) == stripped(second)
    _record_bench(
        "chaos_search_deterministic",
        {"schedules_compared": first["schedules"], "byte_identical": True},
    )


def test_shrinker_reduces_a_synthetic_failure_to_its_core(tmp_path):
    """A 14-event schedule hiding two partitions among noise fails the
    synthetic partition-budget oracle; the shrinker must find the
    2-event core and the saved artifact must replay to that verdict."""
    scenario = DgramPairScenario(sends=12)
    machines = scenario.machines
    plan = FaultPlan(machines=machines)
    plan.loss_burst(10.0, duration_ms=40.0, loss=0.3)
    plan.latency_spike(30.0, duration_ms=50.0, extra_ms=12.0)
    plan.kill_process(60.0, "green", "meterdaemon")
    plan.partition(90.0, [["red"], ["green", "blue", "yellow"]])
    plan.heal(140.0)
    plan.restart_daemon(170.0, "green")
    plan.loss_burst(200.0, duration_ms=30.0, loss=0.5)
    plan.storage_bit_rot(230.0, "blue", "/usr/tmp/f1.store", flips=3, seed=7)
    plan.partition(260.0, [["blue"], ["red", "green", "yellow"]])
    plan.heal(320.0)
    plan.latency_spike(350.0, duration_ms=20.0, extra_ms=8.0)
    plan.kill_process(380.0, "blue", "filter")
    plan.storage_torn_write(410.0, "blue", "/usr/tmp/f1.store", drop_bytes=64)
    plan.loss_burst(440.0, duration_ms=25.0, loss=0.2)
    assert len(plan) >= 12

    baseline = run_scenario(scenario, CLUSTER_SEED)

    def fails(candidate):
        run = run_scenario(scenario, CLUSTER_SEED, candidate)
        verdict = run_oracles(run, baseline, oracles=["partition_budget"])
        return "partition_budget" in violated_names(verdict)

    began = time.perf_counter()
    result = shrink_plan(plan, fails)
    shrink_seconds = time.perf_counter() - began
    assert result.final_events == 2
    assert all(event.kind == "partition" for event in result.plan.events)
    assert is_subsequence(result.plan, plan)

    run = run_scenario(scenario, CLUSTER_SEED, result.plan)
    verdict = run_oracles(run, baseline, oracles=["partition_budget"])
    assert violated_names(verdict) == ["partition_budget"]
    path = save_artifact(
        build_artifact(
            scenario.name,
            CLUSTER_SEED,
            result.plan,
            verdict,
            scenario_kwargs={"sends": 12},
            oracles=["partition_budget"],
            shrink_info={
                "original_events": result.original_events,
                "probes": result.probes,
            },
        ),
        tmp_path / "shrunk.json",
    )
    replayed_verdict, reproduced = replay_artifact(load_artifact(path))
    assert reproduced, replayed_verdict
    _record_bench(
        "chaos_shrink",
        {
            "original_events": result.original_events,
            "shrunk_events": result.final_events,
            "probes": result.probes,
            "wall_seconds": round(shrink_seconds, 3),
        },
    )
