"""Recovering message recipients: send/receive matching.

Section 4.1: a send over a connection does not carry the recipient's
name -- "By examining the sockets that were paired when the connection
was created, the recipient information can be recovered.  This is one
of the tasks of the analysis programs."

Two mechanisms:

- **Connections** (streams): accept and connect events carry both end
  names, which pairs ``(machine, sock)`` endpoints into connections.
  Stream bytes are then matched by cumulative byte offsets, since the
  stream may coalesce or split messages ("As many bytes as possible are
  delivered for each read...").
- **Datagrams**: the send's ``destName`` names the receiving socket and
  the receive's ``sourceName`` names the sender's host; whole datagrams
  are matched FIFO with equal lengths.

Both mechanisms are indexed so matching stays near-linear in trace
size: connections are discovered by a ``(sockName, peerName)`` hash
join rather than a nested accept x connect scan, and datagram claims
walk per-``(destination machine, length)`` FIFO queues rather than
rescanning every receive for every send.
"""

from collections import defaultdict, deque


def _host_of(display_name):
    """Literal host of an "inet:host:port" display name, else None."""
    if display_name and display_name.startswith("inet:"):
        return display_name.split(":")[1]
    return None


class Connection:
    """One stream connection between two trace endpoints."""

    __slots__ = ("initiator", "acceptor", "initiator_name", "acceptor_name")

    def __init__(self, initiator, acceptor, initiator_name, acceptor_name):
        self.initiator = initiator  # (machine, sock)
        self.acceptor = acceptor  # (machine, newSock)
        self.initiator_name = initiator_name
        self.acceptor_name = acceptor_name

    def other_end(self, endpoint):
        if endpoint == self.initiator:
            return self.acceptor
        if endpoint == self.acceptor:
            return self.initiator
        return None

    def __repr__(self):
        return "Connection({0} <-> {1})".format(self.initiator, self.acceptor)


class MessagePair:
    """A matched (send event, receive event) with the byte overlap."""

    __slots__ = ("send", "recv", "nbytes")

    def __init__(self, send, recv, nbytes):
        self.send = send
        self.recv = recv
        self.nbytes = nbytes

    def __repr__(self):
        return "MessagePair({0} -> {1}, {2}B)".format(
            self.send.process, self.recv.process, self.nbytes
        )


class _RecvQueue:
    """Datagram receives for one index key, claimed FIFO.

    A plain list with a head cursor: consumed entries (possibly
    consumed through a *different* key's queue) are skipped and the
    cursor advanced past any consumed prefix, so repeated claims stay
    amortized linear.
    """

    __slots__ = ("items", "head")

    def __init__(self):
        self.items = []
        self.head = 0

    def append(self, event):
        self.items.append(event)

    def claim(self, consumed, send_machine, host_ids):
        """Earliest unconsumed receive whose source is consistent with
        ``send_machine`` (unknown sources are consistent with anyone)."""
        items = self.items
        while self.head < len(items) and items[self.head].index in consumed:
            self.head += 1
        for i in range(self.head, len(items)):
            recv = items[i]
            if recv.index in consumed:
                continue
            src_host = _host_of(recv.name("sourceName"))
            src_id = host_ids.get(src_host) if src_host else None
            if src_id is None or src_id == send_machine:
                return recv
        return None


class MessageMatcher:
    """Pairs sends with receives across a whole trace."""

    def __init__(self, trace):
        self.trace = trace
        self.connections = self._find_connections()
        self._endpoint_conn = {}
        for conn in self.connections:
            self._endpoint_conn[conn.initiator] = conn
            self._endpoint_conn[conn.acceptor] = conn
        self.pairs = []
        self.unmatched_sends = []
        self.unmatched_recvs = []
        self._match_streams()
        self._match_datagrams()

    # -- connection discovery -------------------------------------------

    def _find_connections(self):
        """Hash join of accepts against connects on the name pair.

        Connect events are bucketed by ``(sockName, peerName)``; each
        accept pops the earliest unmatched connect whose names mirror
        its own.  Same pairing as the old nested scan (first matching
        connect in trace order), in O(accepts + connects).
        """
        connects_by_names = defaultdict(deque)
        for conn in self.trace.by_type("connect"):
            key = (conn.name("sockName"), conn.name("peerName"))
            connects_by_names[key].append(conn)
        connections = []
        for acc in self.trace.by_type("accept"):
            acc_name = acc.name("sockName")
            acc_peer = acc.name("peerName")
            queue = connects_by_names.get((acc_peer, acc_name))
            if queue:
                conn = queue.popleft()
                connections.append(
                    Connection(
                        initiator=(conn.machine, conn.sock),
                        acceptor=(acc.machine, acc["newSock"]),
                        initiator_name=acc_peer,
                        acceptor_name=acc_name,
                    )
                )
            else:
                # One-sided trace (e.g. only the server was metered):
                # still record the acceptor end so its traffic groups.
                connections.append(
                    Connection(
                        initiator=None,
                        acceptor=(acc.machine, acc["newSock"]),
                        initiator_name=acc_peer,
                        acceptor_name=acc_name,
                    )
                )
        return connections

    # -- stream matching -------------------------------------------------

    def _match_streams(self):
        # Cumulative byte ranges per direction of each connection.
        sends_by_endpoint = defaultdict(list)
        recvs_by_endpoint = defaultdict(list)
        for event in self.trace:
            endpoint = (event.machine, event.sock)
            conn = self._endpoint_conn.get(endpoint)
            if conn is None:
                continue
            if event.event == "send" and not event.name("destName"):
                sends_by_endpoint[endpoint].append(event)
            elif event.event == "receive":
                recvs_by_endpoint[endpoint].append(event)
        for conn in self.connections:
            if conn.initiator is None:
                continue
            for src, dst in (
                (conn.initiator, conn.acceptor),
                (conn.acceptor, conn.initiator),
            ):
                self._match_byte_ranges(
                    sends_by_endpoint.get(src, []), recvs_by_endpoint.get(dst, [])
                )

    def _match_byte_ranges(self, sends, recvs):
        """Overlap cumulative byte ranges of sends and receives."""
        send_spans = []
        offset = 0
        for event in sends:
            send_spans.append((offset, offset + event.msg_length, event))
            offset += event.msg_length
        recv_spans = []
        offset = 0
        for event in recvs:
            recv_spans.append((offset, offset + event.msg_length, event))
            offset += event.msg_length
        si = 0
        matched_sends = set()
        matched_recvs = set()
        for rstart, rend, recv in recv_spans:
            while si < len(send_spans) and send_spans[si][1] <= rstart:
                si += 1
            sj = si
            while sj < len(send_spans) and send_spans[sj][0] < rend:
                sstart, send_end, send = send_spans[sj]
                overlap = min(send_end, rend) - max(sstart, rstart)
                if overlap > 0:
                    self.pairs.append(MessagePair(send, recv, overlap))
                    matched_sends.add(send.index)
                    matched_recvs.add(recv.index)
                sj += 1
        for __, __, event in send_spans:
            if event.index not in matched_sends:
                self.unmatched_sends.append(event)
        for __, __, event in recv_spans:
            if event.index not in matched_recvs:
                self.unmatched_recvs.append(event)

    # -- datagram matching -------------------------------------------------

    def _match_datagrams(self):
        """FIFO-match datagram sends (which carry a destName) against
        datagram receives (which carry a sourceName).

        The trace's ``machine`` header is a numeric host id while names
        display literal host names, so a literal->id map is first built
        from events whose ``sockName`` is the recording machine's own
        bound name (connect/accept), then refined as matches are made.
        """
        host_ids = {}  # literal host name -> machine id
        for event in self.trace:
            if event.event in ("connect", "accept"):
                host = _host_of(event.name("sockName"))
                if host is not None:
                    host_ids[host] = event.machine

        dgram_recvs = [
            event
            for event in self.trace.by_type("receive")
            if (event.machine, event.sock) not in self._endpoint_conn
        ]
        # Two FIFO indexes over the same receives: by (machine, length)
        # for sends whose destination host is known, by bare length for
        # sends naming an unknown host.  Consumption is shared through
        # the ``consumed`` set, so a receive claimed via one index is
        # skipped by the other.
        by_machine_length = defaultdict(_RecvQueue)
        by_length = defaultdict(_RecvQueue)
        for recv in dgram_recvs:
            by_machine_length[(recv.machine, recv.msg_length)].append(recv)
            by_length[recv.msg_length].append(recv)
        consumed = set()
        for send in self.trace.by_type("send"):
            dest = send.name("destName")
            if not dest:
                continue  # stream send, handled by _match_streams
            dest_id = host_ids.get(_host_of(dest))
            if dest_id is not None:
                queue = by_machine_length.get((dest_id, send.msg_length))
            else:
                queue = by_length.get(send.msg_length)
            recv = (
                queue.claim(consumed, send.machine, host_ids)
                if queue is not None
                else None
            )
            if recv is None:
                self.unmatched_sends.append(send)
                continue
            consumed.add(recv.index)
            src_host = _host_of(recv.name("sourceName"))
            if src_host is not None:
                host_ids.setdefault(src_host, send.machine)
            self.pairs.append(
                MessagePair(send, recv, min(send.msg_length, recv.msg_length))
            )
        for recv in dgram_recvs:
            if recv.index not in consumed:
                self.unmatched_recvs.append(recv)

    # ------------------------------------------------------------------

    def matched_fraction(self):
        sends = self.trace.by_type("send")
        if not sends:
            return 1.0
        matched = {pair.send.index for pair in self.pairs}
        return len(matched) / len(sends)
