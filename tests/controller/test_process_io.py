"""Process I/O redirection across machine boundaries (Section 3.5.2):
output forwarding, user input, and stdin from a file."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession


def _upcase_echo(sys, argv):
    """Reads lines from stdin, writes the uppercased line to stdout;
    exits on the line 'quit'."""
    from repro import guestlib

    buffered = [b""]
    while True:
        line = yield from guestlib.read_line(sys, 0, buffered)
        if line is None or line.strip() == "quit":
            break
        yield sys.write(1, (line.upper() + "\n").encode("ascii"))
    yield sys.exit(0)


def _summer(sys, argv):
    """Sums integers from stdin until EOF marker 'end'; prints total."""
    from repro import guestlib

    buffered = [b""]
    total = 0
    while True:
        line = yield from guestlib.read_line(sys, 0, buffered)
        if line is None or line.strip() == "end":
            break
        total += int(line.strip())
    yield sys.write(1, b"total %d\n" % total)
    yield sys.exit(0)


@pytest.fixture
def session():
    cluster = Cluster(seed=19)
    sess = MeasurementSession(cluster, control_machine="yellow")
    sess.install_program("upcase", _upcase_echo)
    sess.install_program("summer", _summer)
    return sess


def _start_job(session, program):
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red {0}".format(program))
    session.command("startjob j")


def test_input_reaches_remote_process_and_output_returns(session):
    _start_job(session, "upcase")
    session.command("input j upcase hello.world")
    session.settle(200)
    out = session.drain_output()
    # The process' stdout travelled process -> daemon -> controller.
    assert "upcase: HELLO.WORLD" in out


def test_input_line_by_line_interaction(session):
    _start_job(session, "upcase")
    session.command("input j upcase first")
    session.settle(100)
    session.command("input j upcase second")
    session.settle(100)
    session.command("input j upcase quit")
    session.settle()
    out = session.drain_output()
    assert "upcase: FIRST" in out
    assert "upcase: SECOND" in out
    assert "DONE: process upcase in job 'j' terminated: reason: normal" in out


def test_input_unknown_process_reports(session):
    session.command("filter f1 blue")
    session.command("newjob j")
    out = session.command("input j ghost hello")
    assert "no process 'ghost'" in out


def test_stdinfile_redirects_local_file(session):
    # The input file lives on the controller's machine (yellow); the
    # process runs on red -- the controller must copy it over first.
    session.cluster.machine("yellow").fs.install(
        "numbers", "3\n4\n10\nend\n", owner=session.uid, mode=0o644
    )
    _start_job(session, "summer")
    out = session.command("stdinfile j summer numbers")
    assert out == ""
    session.settle()
    out = session.drain_output()
    assert "summer: total 17" in out
    assert session.cluster.machine("red").fs.exists("numbers")


def test_stdinfile_missing_file_reports(session):
    _start_job(session, "upcase")
    out = session.command("stdinfile j upcase nosuchfile")
    assert "cannot copy" in out or "not redirected" in out


def test_stdinfile_file_already_on_target_machine(session):
    session.cluster.machine("red").fs.install(
        "localnumbers", "1\n2\nend\n", owner=session.uid, mode=0o644
    )
    # Also on yellow so the rcp path is skipped? No: file on red only;
    # controller on yellow has no copy, but the daemon opens it locally
    # after the (red != yellow) rcp attempt... so install on yellow too.
    session.cluster.machine("yellow").fs.install(
        "localnumbers", "1\n2\nend\n", owner=session.uid, mode=0o644
    )
    _start_job(session, "summer")
    session.command("stdinfile j summer localnumbers")
    session.settle()
    assert "summer: total 3" in session.drain_output()


def test_help_lists_io_commands(session):
    out = session.command("help")
    assert "input" in out and "stdinfile" in out
