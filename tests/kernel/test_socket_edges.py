"""Socket-layer edge cases and invariants."""

import pytest

from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from tests.conftest import run_guests


def test_connect_twice_is_eisconn(cluster):
    errors = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        yield sys.accept(fd)
        yield sys.sleep(100)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        try:
            yield sys.connect(fd, ("red", 5000))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert errors == [errno.EISCONN]


def test_accept_before_listen_is_einval(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        try:
            yield sys.accept(fd)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EINVAL]


def test_read_on_listening_socket_is_einval(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        try:
            yield sys.read(fd, 10)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EINVAL]


def test_write_on_unconnected_stream_is_enotconn(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.write(fd, b"x")
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.ENOTCONN]


def test_bind_twice_is_einval(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 5000))
        try:
            yield sys.bind(fd, ("", 5001))
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EINVAL]


def test_same_port_different_types_coexist(cluster):
    """A stream and a datagram socket may share a port number (the
    (type, port) pair is the key, as with TCP/UDP)."""

    def guest(sys, argv):
        a = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(a, ("", 5000))
        b = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(b, ("", 5000))
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.exit_reason == defs.EXIT_NORMAL


def test_socketpair_inet_rejected(cluster):
    errors = []

    def guest(sys, argv):
        try:
            yield sys.socketpair(defs.AF_INET, defs.SOCK_STREAM)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EOPNOTSUPP]


def test_flow_control_credit_never_negative(cluster):
    """Invariant: the sender's credit view stays within
    [0, SOCK_BUFFER_BYTES] through a large, chunked transfer."""
    observed = []

    def sink(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        while True:
            data = yield sys.read(conn, 700)
            if not data:
                break
            yield sys.sleep(1)  # slow reader forces backpressure
        yield sys.exit(0)

    def source(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        for i in range(10):
            yield sys.write(fd, b"z" * 3000)
        yield sys.close(fd)
        yield sys.exit(0)

    sink_proc = cluster.spawn("red", sink, uid=100)
    source_proc = cluster.spawn("green", source, uid=100)
    # Observe the sender's socket credit as the sim runs.
    green = cluster.machine("green")

    def probe():
        for entry in green.file_table.entries.values():
            if entry.kind == "socket" and entry.obj.is_stream:
                observed.append(entry.obj.send_credit)

    for __ in range(400):
        cluster.sim.run(max_events=50)
        probe()
        if source_proc.state == defs.PROC_ZOMBIE:
            break
    cluster.run_until_exit([sink_proc, source_proc], max_events=3_000_000)
    assert observed
    assert all(0 <= credit <= defs.SOCK_BUFFER_BYTES for credit in observed)


def test_shutdown_on_unconnected_socket_is_enotconn(cluster):
    errors = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.shutdown(fd, "w")
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.ENOTCONN]


def test_write_after_own_shutdown_is_epipe(cluster):
    errors = []

    def guest(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.shutdown(a, "w")
        try:
            yield sys.write(a, b"late")
        except SyscallError as err:
            errors.append(err.errno)
        # ... but the other direction still works after a half close.
        yield sys.write(b, b"still fine")
        data = yield sys.read(a, 100)
        assert data == b"still fine"
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EPIPE]
    assert proc.exit_reason == defs.EXIT_NORMAL


def test_half_close_gives_peer_eof_but_accepts_data(cluster):
    results = []

    def guest(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.shutdown(a, "w")
        yield sys.sleep(5)
        results.append((yield sys.read(b, 100)))  # EOF from a
        yield sys.write(b, b"reply anyway")
        results.append((yield sys.read(a, 100)))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert results == [b"", b"reply anyway"]
