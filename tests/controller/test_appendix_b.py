"""The example session of Section 4.4 / Appendix B, as a transcript-
shape test: same commands, same response shapes, same event flow."""

import re

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs


def _prog_a(sys, argv):
    from repro import guestlib

    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, ("green", 7777)
    )
    for i in range(3):
        yield sys.write(fd, b"msg-%d" % i)
        yield sys.read(fd, 100)
    yield sys.close(fd)
    yield sys.exit(0)


def _prog_b(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(fd, ("", 7777))
    yield sys.listen(fd, 5)
    conn, __peer = yield sys.accept(fd)
    while True:
        data = yield sys.read(conn, 100)
        if not data:
            break
        yield sys.write(conn, b"r:" + data)
    yield sys.close(conn)
    yield sys.exit(0)


@pytest.fixture
def finished_session():
    cluster = Cluster(machines=("red", "green", "blue", "yellow"), seed=7)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("A", _prog_a)
    session.install_program("B", _prog_b)
    outputs = {}
    outputs["filter"] = session.command("filter f1 blue")
    outputs["newjob"] = session.command("newjob foo")
    outputs["add_a"] = session.command("addprocess foo red A")
    outputs["add_b"] = session.command("addprocess foo green B")
    outputs["setflags"] = session.command(
        "setflags foo send receive fork accept connect"
    )
    outputs["startjob"] = session.command("startjob foo")
    session.settle()
    outputs["rmjob"] = session.command("rmjob foo")
    outputs["getlog"] = session.command("getlog f1 trace")
    outputs["bye"] = session.command("bye")
    return session, outputs


def test_filter_creation_line(finished_session):
    __, outputs = finished_session
    assert re.match(
        r"filter 'f1' \.\.\. created: identifier = \d+\n", outputs["filter"]
    )


def test_newjob_is_silent(finished_session):
    __, outputs = finished_session
    assert outputs["newjob"] == ""


def test_process_creation_lines(finished_session):
    __, outputs = finished_session
    assert re.match(
        r"process 'A' \.\.\. created: identifier = \d+\n", outputs["add_a"]
    )
    assert re.match(
        r"process 'B' \.\.\. created: identifier = \d+\n", outputs["add_b"]
    )


def test_setflags_output_matches_appendix_b(finished_session):
    __, outputs = finished_session
    lines = outputs["setflags"].splitlines()
    assert lines[0] == "new job flags = send receive fork accept connect"
    assert "Process 'A' : Flags set" in lines
    assert "Process 'B' : Flags set" in lines


def test_startjob_reports_each_process(finished_session):
    __, outputs = finished_session
    assert "'A' started." in outputs["startjob"]
    assert "'B' started." in outputs["startjob"]


def test_done_notifications_with_reason_normal(finished_session):
    session, __ = finished_session
    transcript = session.transcript()
    assert "DONE: process A in job 'foo' terminated: reason: normal" in transcript
    assert "DONE: process B in job 'foo' terminated: reason: normal" in transcript


def test_rmjob_reports_removals(finished_session):
    __, outputs = finished_session
    assert "'A' removed" in outputs["rmjob"]
    assert "'B' removed" in outputs["rmjob"]


def test_trace_file_retrieved_by_getlog(finished_session):
    session, outputs = finished_session
    assert outputs["getlog"] == ""
    content = session.read_controller_file("trace")
    events = [line.split()[0] for line in content.splitlines()]
    assert "event=connect" in events
    assert "event=accept" in events
    assert "event=send" in events
    assert "event=receive" in events
    # fork was flagged but never used; termproc was NOT flagged.
    assert "event=termproc" not in events


def test_controller_exits_on_bye(finished_session):
    session, __ = finished_session
    session.settle(50)
    assert not session.controller_alive()


def test_prompt_shape(finished_session):
    session, __ = finished_session
    assert session.transcript().startswith("<Control> ")


def test_transcript_is_deterministic():
    """Two identically-seeded sessions produce identical transcripts."""

    def run_once():
        cluster = Cluster(seed=7)
        session = MeasurementSession(cluster, control_machine="yellow")
        session.install_program("A", _prog_a)
        session.install_program("B", _prog_b)
        for command in (
            "filter f1 blue",
            "newjob foo",
            "addprocess foo red A",
            "addprocess foo green B",
            "setflags foo send receive fork accept connect",
            "startjob foo",
        ):
            session.command(command)
        session.settle()
        session.command("rmjob foo")
        session.command("getlog f1 trace")
        session.command("bye")
        return session.transcript(), session.read_controller_file("trace")

    first = run_once()
    second = run_once()
    assert first == second
