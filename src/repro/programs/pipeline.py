"""A processing pipeline: stage i receives from stage i-1, transforms,
and forwards to stage i+1.

Its communication graph should classify as "pipeline"; its parallelism
profile shows overlap once the pipe fills.
"""

from repro import guestlib
from repro.kernel import defs


def pipeline_stage(sys, argv):
    """argv: [my_port, next_host, next_port, role, nitems, work_ms]

    role: "source" (generates items), "middle", or "sink" (reports).
    """
    my_port = int(argv[0])
    next_host = argv[1]
    next_port = int(argv[2])
    role = argv[3]
    nitems = int(argv[4]) if len(argv) > 4 else 10
    work_ms = float(argv[5]) if len(argv) > 5 else 2.0

    in_fd = None
    if role != "source":
        listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(listen_fd, ("", my_port))
        yield sys.listen(listen_fd, 1)

    out_fd = None
    if role != "sink":
        out_fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, (next_host, next_port)
        )

    if role != "source":
        in_fd, __ = yield sys.accept(listen_fd)

    processed = 0
    if role == "source":
        for i in range(nitems):
            yield sys.compute(work_ms)
            yield from guestlib.send_frame(sys, out_fd, b"item-%d" % i)
            processed += 1
        yield sys.close(out_fd)
    else:
        while True:
            item = yield from guestlib.recv_frame(sys, in_fd)
            if item is None:
                break
            yield sys.compute(work_ms)
            processed += 1
            if role == "middle":
                yield from guestlib.send_frame(sys, out_fd, item + b"+")
        if out_fd is not None:
            yield sys.close(out_fd)
        if role == "sink":
            yield sys.write(1, b"sink processed %d items\n" % processed)
    yield sys.exit(0)
