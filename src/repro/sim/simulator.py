"""The deterministic discrete-event loop.

Everything in the reproduction -- kernels, the network, daemons, the
controller -- advances by scheduling callbacks on a single global event
queue.  Determinism is a design requirement (DESIGN.md Section 5): given
the same seed, a run produces byte-identical traces, which makes the
paper's example session (Appendix B) reproducible as a test.
"""

import heapq
import itertools
import random

from repro.sim.errors import SimulationDeadlock, SimulationError


class _Event:
    """One scheduled callback.  Ordered by (time, sequence number)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "in_queue")

    def __init__(self, time, seq, callback):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.in_queue = True

    def __lt__(self, other):
        return (self.time, self.seq) < (other.time, other.seq)


#: Compaction never triggers below this many cancelled events; tiny
#: queues are cheaper to drain lazily than to rebuild.
_COMPACT_MIN_CANCELLED = 64


class Simulator:
    """Global event queue and simulated clock.

    Time is a float in milliseconds.  Scheduling ties are broken by
    insertion order, so the loop is fully deterministic.
    """

    def __init__(self, seed=0):
        self.now = 0.0
        self.rng = random.Random(seed)
        self._queue = []
        self._seq = itertools.count()
        self._idle_hooks = []
        self.events_run = 0
        #: Cancelled events still sitting in the heap (lazy removal).
        self._cancelled_in_queue = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------

    def schedule(self, delay_ms, callback):
        """Run ``callback()`` after ``delay_ms`` of simulated time.

        Returns a handle that can be passed to :meth:`cancel`.
        """
        if delay_ms < 0:
            raise SimulationError("cannot schedule into the past: %r" % delay_ms)
        event = _Event(self.now + delay_ms, next(self._seq), callback)
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(self, time_ms, callback):
        """Run ``callback()`` at absolute simulated time ``time_ms``."""
        return self.schedule(max(0.0, time_ms - self.now), callback)

    def call_soon(self, callback):
        """Run ``callback()`` at the current time, after pending events."""
        return self.schedule(0.0, callback)

    def cancel(self, event):
        """Cancel a scheduled event (lazy removal).

        The event stays in the heap until it surfaces or until
        cancelled events outnumber live ones, at which point the heap
        is compacted -- so long timer-churny runs (fault injection,
        retry storms) don't drag a garbage-filled queue.
        """
        if event.cancelled:
            return
        event.cancelled = True
        if not event.in_queue:
            return  # already popped and executed/discarded
        self._cancelled_in_queue += 1
        if (
            self._cancelled_in_queue >= _COMPACT_MIN_CANCELLED
            and self._cancelled_in_queue * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self):
        """Rebuild the heap without cancelled events."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._cancelled_in_queue = 0

    def add_idle_hook(self, hook):
        """Register ``hook()`` to run when the queue drains.

        If any hook schedules new work the loop continues.  The kernel
        schedulers use this to detect deadlock among blocked processes.
        """
        self._idle_hooks.append(hook)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def step(self):
        """Run the next pending event.  Returns False if queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            event.in_queue = False
            if event.cancelled:
                self._cancelled_in_queue -= 1
                continue
            if event.time < self.now:
                raise SimulationError("event queue went backwards")
            self.now = event.time
            self.events_run += 1
            event.callback()
            return True
        return False

    def run(self, until_ms=None, max_events=None):
        """Run events until the queue drains or a limit is reached.

        ``until_ms`` stops the loop once simulated time would pass that
        point (the clock is left at ``until_ms``).  ``max_events`` bounds
        the number of callbacks, as a runaway guard for tests.
        """
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            next_event = self._peek()
            if next_event is None:
                if self._run_idle_hooks():
                    continue
                if until_ms is not None and until_ms > self.now:
                    self.now = until_ms  # wall-clock wait with nothing to do
                return
            if until_ms is not None and next_event.time > until_ms:
                self.now = until_ms
                return
            self.step()
            count += 1

    def run_until(self, predicate, max_events=1_000_000):
        """Run until ``predicate()`` is true.

        Raises :class:`SimulationDeadlock` if the queue drains first --
        that means whatever the caller is waiting for can never happen.
        """
        count = 0
        while not predicate():
            next_event = self._peek()
            if next_event is None:
                if self._run_idle_hooks():
                    continue
                raise SimulationDeadlock(
                    ["waiting for predicate %r" % getattr(predicate, "__name__", predicate)]
                )
            if count >= max_events:
                raise SimulationError(
                    "run_until exceeded %d events without satisfying the "
                    "predicate" % max_events
                )
            self.step()
            count += 1

    def pending_events(self):
        """Number of live (non-cancelled) events in the queue.  O(1):
        the count of lazily-cancelled entries is tracked as they are
        cancelled, popped, and compacted away."""
        return len(self._queue) - self._cancelled_in_queue

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _peek(self):
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue).in_queue = False
            self._cancelled_in_queue -= 1
        return self._queue[0] if self._queue else None

    def _run_idle_hooks(self):
        """Run idle hooks; report whether any scheduled new work."""
        for hook in self._idle_hooks:
            hook()
        return self._peek() is not None
