"""The meterdaemon: RPC operations and notifications, tested without a
controller (a bare test guest plays the controller role)."""

import pytest

from repro.daemon import protocol
from repro.daemon.meterdaemon import METERDAEMON_PORT, meterdaemon
from repro.core.cluster import Cluster
from repro.filtering.descriptions import default_descriptions_text
from repro.filtering.rules import DEFAULT_TEMPLATES_TEXT
from repro.filtering.standard import standard_filter
from repro.kernel import defs
from repro.metering import flags as mf


@pytest.fixture
def rig():
    """A cluster with daemons (no controller) plus RPC helpers."""
    cluster = Cluster(seed=33)
    cluster.registry.register("filter", standard_filter)
    for machine in cluster.machines.values():
        machine.fs.install("filter", data="filter", mode=0o755, program="filter")
        machine.fs.install("descriptions", default_descriptions_text(), mode=0o644)
        machine.fs.install("templates", DEFAULT_TEMPLATES_TEXT, mode=0o644)
        machine.accounts.add(100)
        machine.create_process(main=meterdaemon, uid=0, program_name="meterdaemon")
    return _Rig(cluster)


class _Rig:
    def __init__(self, cluster):
        self.cluster = cluster
        self.notifications = []
        self.notify_port = None
        self._start_notify_sink()

    def _start_notify_sink(self):
        notifications = self.notifications
        holder = {}

        def sink(sys, argv):
            fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
            yield sys.bind(fd, ("", 0))
            yield sys.listen(fd, 8)
            holder["port"] = (yield sys.getsockname(fd)).port
            conns = {}
            while True:
                ready, __ = yield sys.select([fd] + list(conns))
                for rfd in ready:
                    if rfd == fd:
                        conn, __peer = yield sys.accept(fd)
                        conns[conn] = b""
                        continue
                    data = yield sys.read(rfd, 4096)
                    if not data:
                        yield sys.close(rfd)
                        del conns[rfd]
                        continue
                    buf = conns[rfd] + data
                    while len(buf) >= 4:
                        length = int.from_bytes(buf[:4], "big")
                        if len(buf) - 4 < length:
                            break
                        notifications.append(protocol.decode(buf[4 : 4 + length]))
                        buf = buf[4 + length :]
                    conns[rfd] = buf

        self.cluster.spawn("yellow", sink, uid=100, program_name="notifysink")
        self.cluster.run_until(lambda: "port" in holder)
        self.notify_port = holder["port"]

    def rpc(self, machine, msg_type, uid=100, **body):
        """One controller/daemon exchange, from the yellow machine."""
        body.setdefault("uid", uid)
        body.setdefault("control_host", "yellow")
        body.setdefault("control_port", self.notify_port)
        result = {}

        def client(sys, argv):
            from repro import guestlib

            fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
            yield sys.connect(fd, (machine, METERDAEMON_PORT))
            yield from guestlib.send_frame(sys, fd, protocol.encode(msg_type, **body))
            payload = yield from guestlib.recv_frame(sys, fd)
            result["reply"] = protocol.decode(payload)
            yield sys.close(fd)
            yield sys.exit(0)

        proc = self.cluster.spawn("yellow", client, uid=uid, program_name="rpcclient")
        self.cluster.run_until_exit([proc])
        return result["reply"]

    def create_filter(self, machine="blue", name="f1", uid=100):
        reply_type, body = self.rpc(
            machine,
            protocol.CREATE_FILTER_REQ,
            uid=uid,
            filtername=name,
            filterfile="filter",
            descriptions="descriptions",
            templates="templates",
        )
        assert reply_type == protocol.CREATE_FILTER_REPLY, body
        return body

    def settle(self, ms=50):
        self.cluster.run(until_ms=self.cluster.sim.now + ms)


def _install_workload(cluster, name, main):
    cluster.registry.register(name, main)
    for machine in cluster.machines.values():
        machine.fs.install(name, data=name, mode=0o755, program=name)


def _chatty(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    for __ in range(3):
        yield sys.sendto(fd, b"x", ("green", 6000))
        yield sys.sleep(5)
    yield sys.write(1, b"done\n")
    yield sys.exit(0)


def test_create_filter_reports_meter_port_and_pid(rig):
    body = rig.create_filter()
    assert body["status"] == protocol.OK
    assert body["meter_host"] == "blue"
    assert body["meter_port"] > 0
    assert body["log_path"] == "/usr/tmp/f1.log"
    assert body["pid"] in rig.cluster.machine("blue").procs


def test_create_process_is_suspended_and_metered(rig):
    _install_workload(rig.cluster, "chatty", _chatty)
    filter_body = rig.create_filter()
    reply_type, body = rig.rpc(
        "red",
        protocol.CREATE_REQ,
        filename="chatty",
        params=[],
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
        meter_flags=mf.M_ALL,
        jobname="j",
        procname="chatty",
    )
    assert reply_type == protocol.CREATE_REPLY and body["status"] == protocol.OK
    proc = rig.cluster.machine("red").procs[body["pid"]]
    assert proc.state == defs.PROC_EMBRYO  # suspended pre-execution
    assert proc.uid == 100  # runs under the requesting account
    assert proc.meter_entry is not None
    assert proc.meter_flags == mf.M_ALL
    rig.settle(100)
    assert proc.state == defs.PROC_EMBRYO  # still suspended


def test_signal_starts_the_created_process(rig):
    _install_workload(rig.cluster, "chatty", _chatty)
    filter_body = rig.create_filter()
    __, body = rig.rpc(
        "red",
        protocol.CREATE_REQ,
        filename="chatty",
        params=[],
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
        meter_flags=mf.M_ALL,
    )
    pid = body["pid"]
    reply_type, sig_body = rig.rpc(
        "red", protocol.SIGNAL_REQ, pid=pid, sig=defs.SIGCONT
    )
    assert reply_type == protocol.SIGNAL_REPLY and sig_body["status"] == protocol.OK
    rig.settle(200)
    proc = rig.cluster.machine("red").procs[pid]
    assert proc.state == defs.PROC_ZOMBIE
    assert proc.exit_reason == defs.EXIT_NORMAL


def test_termination_notification_reaches_controller(rig):
    _install_workload(rig.cluster, "chatty", _chatty)
    filter_body = rig.create_filter()
    __, body = rig.rpc(
        "red",
        protocol.CREATE_REQ,
        filename="chatty",
        params=[],
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
        meter_flags=0,
        jobname="foo",
        procname="chatty",
    )
    rig.rpc("red", protocol.SIGNAL_REQ, pid=body["pid"], sig=defs.SIGCONT)
    rig.settle(200)
    terminations = [
        note for mtype, note in rig.notifications
        if mtype == protocol.TERMINATION_NOTIFY
    ]
    assert any(
        note["pid"] == body["pid"]
        and note["reason"] == defs.EXIT_NORMAL
        and note["jobname"] == "foo"
        for note in terminations
    )


def test_output_forwarded_through_gateway(rig):
    _install_workload(rig.cluster, "chatty", _chatty)
    filter_body = rig.create_filter()
    __, body = rig.rpc(
        "red",
        protocol.CREATE_REQ,
        filename="chatty",
        params=[],
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
        meter_flags=0,
        procname="chatty",
    )
    rig.rpc("red", protocol.SIGNAL_REQ, pid=body["pid"], sig=defs.SIGCONT)
    rig.settle(200)
    outputs = [
        note for mtype, note in rig.notifications
        if mtype == protocol.OUTPUT_NOTIFY
    ]
    assert any("done" in note["data"] for note in outputs)


def test_create_without_account_is_denied(rig):
    _install_workload(rig.cluster, "chatty", _chatty)
    filter_body = rig.create_filter()
    reply_type, body = rig.rpc(
        "red",
        protocol.CREATE_REQ,
        uid=777,  # no account on red
        filename="chatty",
        params=[],
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
        meter_flags=0,
    )
    assert reply_type == protocol.ERROR_REPLY
    assert "account" in body["status"]


def test_create_missing_executable_is_enoent_error(rig):
    filter_body = rig.create_filter()
    reply_type, body = rig.rpc(
        "red",
        protocol.CREATE_REQ,
        filename="no_such_file",
        params=[],
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
        meter_flags=0,
    )
    assert reply_type == protocol.ERROR_REPLY
    assert "ENOENT" in body["status"]


def test_signal_foreign_process_denied(rig):
    victim = rig.cluster.spawn(
        "red", _chatty, uid=500, program_name="victim", start=False
    )
    reply_type, body = rig.rpc(
        "red", protocol.SIGNAL_REQ, uid=100, pid=victim.pid, sig=defs.SIGKILL
    )
    assert reply_type == protocol.ERROR_REPLY
    assert victim.state != defs.PROC_ZOMBIE


def test_acquire_meters_a_running_process(rig):
    def forever(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        while True:
            yield sys.sendto(fd, b"x", ("green", 6000))
            yield sys.sleep(10)

    target = rig.cluster.spawn("red", forever, uid=100, program_name="server")
    rig.settle(30)
    filter_body = rig.create_filter()
    reply_type, body = rig.rpc(
        "red",
        protocol.ACQUIRE_REQ,
        pid=target.pid,
        meter_flags=mf.METERSEND,
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
    )
    assert reply_type == protocol.ACQUIRE_REPLY and body["status"] == protocol.OK
    assert target.meter_entry is not None
    rig.settle(300)
    log = rig.cluster.machine("blue").fs.node("/usr/tmp/f1.log")
    assert b"send" in bytes(log.data)


def test_unmeter_detaches_but_does_not_kill(rig):
    def forever(sys, argv):
        while True:
            yield sys.sleep(10)

    target = rig.cluster.spawn("red", forever, uid=100, program_name="server")
    filter_body = rig.create_filter()
    rig.rpc(
        "red",
        protocol.ACQUIRE_REQ,
        pid=target.pid,
        meter_flags=mf.M_ALL,
        filter_host=filter_body["meter_host"],
        filter_port=filter_body["meter_port"],
    )
    assert target.meter_entry is not None
    reply_type, body = rig.rpc("red", protocol.UNMETER_REQ, pid=target.pid)
    assert reply_type == protocol.UNMETER_REPLY
    assert target.meter_entry is None
    assert target.meter_flags == 0
    assert target.state != defs.PROC_ZOMBIE


def test_getlog_returns_file_content(rig):
    rig.cluster.machine("blue").fs.install(
        "/usr/tmp/f9.log", b"event=send pid=1\n", owner=100, mode=0o644
    )
    reply_type, body = rig.rpc("blue", protocol.GETLOG_REQ, path="/usr/tmp/f9.log")
    assert reply_type == protocol.GETLOG_REPLY
    assert body["content"] == "event=send pid=1\n"


def test_setflags_changes_meter_mask(rig):
    def idle(sys, argv):
        while True:
            yield sys.sleep(100)

    target = rig.cluster.spawn("red", idle, uid=100, program_name="idle")
    rig.settle(5)
    reply_type, body = rig.rpc(
        "red", protocol.SETFLAGS_REQ, pid=target.pid, flags=mf.METERSEND
    )
    assert reply_type == protocol.SETFLAGS_REPLY
    assert target.meter_flags == mf.METERSEND


def test_unknown_request_type_errors(rig):
    reply_type, body = rig.rpc("red", 999)
    assert reply_type == protocol.ERROR_REPLY
