"""Parallelism measurement."""

import pytest

from repro.analysis.parallelism import ParallelismProfile
from tests.analysis.harness import TraceBuilder


def _overlapping_trace():
    """Two processes active 0-100 and 50-150: average ~1.33, peak 2."""
    b = TraceBuilder()
    b.send(1, 10, 0, sock=1, nbytes=5, dest="inet:x:1", procTime=0)
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1", procTime=50)
    b.send(2, 20, 50, sock=1, nbytes=5, dest="inet:x:1", procTime=0)
    b.send(2, 20, 150, sock=1, nbytes=5, dest="inet:x:1", procTime=50)
    return b.build()


def test_spans_cover_first_to_last_event():
    profile = ParallelismProfile(_overlapping_trace())
    assert profile.spans[(1, 10)] == (0, 100)
    assert profile.spans[(2, 20)] == (50, 150)
    assert profile.elapsed_ms() == 150


def test_peak_parallelism_in_overlap_window():
    profile = ParallelismProfile(_overlapping_trace())
    assert profile.peak_parallelism() == 2


def test_average_parallelism_between_one_and_two():
    profile = ParallelismProfile(_overlapping_trace())
    assert 1.0 < profile.average_parallelism() < 2.0


def test_serialized_processes_average_one():
    b = TraceBuilder()
    b.send(1, 10, 0, sock=1, nbytes=5, dest="inet:x:1")
    b.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1")
    b.send(2, 20, 101, sock=1, nbytes=5, dest="inet:x:1")
    b.send(2, 20, 200, sock=1, nbytes=5, dest="inet:x:1")
    profile = ParallelismProfile(b.build())
    assert profile.average_parallelism() == pytest.approx(1.0, abs=0.15)


def test_total_cpu_sums_final_proc_times():
    profile = ParallelismProfile(_overlapping_trace())
    assert profile.total_cpu_ms() == 100


def test_cpu_parallelism():
    profile = ParallelismProfile(_overlapping_trace())
    assert profile.cpu_parallelism() == pytest.approx(100 / 150, rel=0.01)


def test_single_event_trace():
    b = TraceBuilder()
    b.send(1, 10, 42, sock=1, nbytes=5, dest="inet:x:1")
    profile = ParallelismProfile(b.build())
    assert profile.elapsed_ms() == 0
    assert profile.average_parallelism() == 1.0


def test_report_mentions_key_numbers():
    report = ParallelismProfile(_overlapping_trace()).report()
    assert "average active processes" in report
    assert "peak: 2" in report
