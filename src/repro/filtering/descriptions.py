"""Event record descriptions (Figure 3.2).

The description file defines the message formats for the meter/filter
protocol: one line per event type, listing each body field as
``name,offset,length,base``::

    HEADER size machine cpuTime procTime traceType
    SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10
           destNameLen,16,4,10 destName,20,16,16

Offsets are from the start of the message body (the 24-byte header is
common to all messages); base 10 fields are big-endian integers, and
base 16 fields of length 16 are NAME (sockaddr) blobs.

"Since the meter creates these messages, such definitions are very
important for establishing a successful protocol between the meter and
a filter" -- so the default description file is *generated from* the
codec's field tables (:func:`default_descriptions_text`), and the
standard filter decodes with the descriptions, never with the codec
directly.  A mismatch is therefore a real protocol failure, exactly as
it would have been in 1984.
"""

from repro.metering import messages
from repro.net.addresses import decode_name

HEADER_FIELDS = ("size", "machine", "cpuTime", "procTime", "traceType")

# Header layout (offset, length) within the 24-byte header.
_HEADER_LAYOUT = {
    "size": (0, 4),
    "machine": (4, 2),
    "cpuTime": (8, 4),
    "procTime": (16, 4),
    "traceType": (20, 4),
}


class FieldDescription:
    """One ``name,offset,length,base`` entry."""

    __slots__ = ("name", "offset", "length", "base")

    def __init__(self, name, offset, length, base):
        self.name = name
        self.offset = int(offset)
        self.length = int(length)
        self.base = int(base)

    def decode(self, body, host_names):
        raw = body[self.offset : self.offset + self.length]
        if self.base == 16 and self.length == 16:
            name = decode_name(raw, host_names)
            return name.display() if name is not None else ""
        return int.from_bytes(raw, "big", signed=True)

    def to_text(self):
        return "{0},{1},{2},{3}".format(self.name, self.offset, self.length, self.base)


class EventDescription:
    """All fields of one event type."""

    def __init__(self, event, type_code, fields):
        self.event = event
        self.type_code = int(type_code)
        self.fields = list(fields)

    def field_names(self):
        return [field.name for field in self.fields]

    def decode_body(self, body, host_names):
        return {
            field.name: field.decode(body, host_names) for field in self.fields
        }


class DescriptionSet:
    """A parsed description file: header + per-event descriptions."""

    def __init__(self, header_fields, events):
        self.header_fields = list(header_fields)
        #: type code -> EventDescription
        self.by_type = {event.type_code: event for event in events}
        self.by_name = {event.event.lower(): event for event in events}

    def decode_message(self, raw, host_names=None):
        """Decode one complete meter message into a flat record dict."""
        host_names = host_names or {}
        record = {}
        for name in self.header_fields:
            offset, length = _HEADER_LAYOUT[name]
            record[name] = int.from_bytes(
                raw[offset : offset + length], "big", signed=True
            )
        event = self.by_type.get(record["traceType"])
        if event is None:
            raise ValueError("no description for traceType %d" % record["traceType"])
        record["event"] = event.event.lower()
        record.update(
            event.decode_body(raw[messages.HEADER_BYTES :], host_names)
        )
        return record

    def field_order(self, event_name):
        """Display order for log records: header fields then body."""
        event = self.by_name[event_name.lower()]
        return ["event"] + list(self.header_fields) + event.field_names()


def parse_descriptions(text):
    """Parse a description file (Figure 3.2 format)."""
    header_fields = list(HEADER_FIELDS)
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        words = [t for t in line.split() if t]
        keyword = words[0]
        if keyword.upper() == "HEADER":
            header_fields = words[1:]
            continue
        # "SEND 1, pid,0,4,10 pc,4,4,10 ..."
        type_token = words[1].rstrip(",")
        fields = []
        for spec in words[2:]:
            parts = spec.split(",")
            if len(parts) != 4:
                raise ValueError("bad field spec %r in %r" % (spec, line))
            fields.append(FieldDescription(parts[0], parts[1], parts[2], parts[3]))
        events.append(EventDescription(keyword, type_token, fields))
    return DescriptionSet(header_fields, events)


def default_descriptions_text():
    """Generate the canonical description file from the codec tables."""
    lines = ["HEADER " + " ".join(HEADER_FIELDS)]
    for event, type_code in sorted(
        messages.EVENT_TYPES.items(), key=lambda item: item[1]
    ):
        specs = [
            "{0},{1},{2},{3}".format(name, offset, length, base)
            for name, offset, length, base in messages.field_layout(event)
        ]
        lines.append("{0} {1}, {2}".format(event.upper(), type_code, " ".join(specs)))
    return "\n".join(lines) + "\n"


def default_description_set():
    return parse_descriptions(default_descriptions_text())
