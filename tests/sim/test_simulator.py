"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.errors import SimulationDeadlock, SimulationError
from repro.sim.simulator import Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    order = []
    sim.schedule(5.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(9.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]
    assert sim.now == 9.0


def test_ties_break_by_insertion_order():
    sim = Simulator()
    order = []
    for label in "abcde":
        sim.schedule(3.0, lambda l=label: order.append(l))
    sim.run()
    assert order == list("abcde")


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(4.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [4.0]


def test_schedule_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(handle)
    sim.run()
    assert fired == []
    assert sim.pending_events() == 0


def test_run_until_time_limit_stops_clock_at_limit():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append(1))
    sim.run(until_ms=5.0)
    assert fired == []
    assert sim.now == 5.0
    sim.run()
    assert fired == [1]


def test_run_until_predicate():
    sim = Simulator()
    counter = []

    def tick():
        counter.append(1)
        if len(counter) < 5:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    sim.run_until(lambda: len(counter) >= 3)
    assert len(counter) == 3


def test_run_until_raises_deadlock_when_queue_drains():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationDeadlock):
        sim.run_until(lambda: False)


def test_run_until_max_events_guard():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run_until(lambda: False, max_events=100)


def test_events_scheduled_during_run_are_executed():
    sim = Simulator()
    seen = []
    sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: seen.append(sim.now)))
    sim.run()
    assert seen == [2.0]


def test_run_max_events_bound():
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    sim.run(max_events=10)
    assert sim.events_run == 10


def test_idle_hook_can_extend_the_run():
    sim = Simulator()
    extended = []

    def hook():
        if not extended:
            extended.append(True)
            sim.schedule(1.0, lambda: extended.append("ran"))

    sim.add_idle_hook(hook)
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert "ran" in extended


def test_rng_is_seeded_and_deterministic():
    values_a = [Simulator(seed=7).rng.random() for __ in range(3)]
    values_b = [Simulator(seed=7).rng.random() for __ in range(3)]
    assert values_a == values_b
    assert values_a != [Simulator(seed=8).rng.random() for __ in range(3)]


def test_run_until_max_events_bound_is_exact():
    """The guard fires after exactly max_events callbacks, not one more."""
    sim = Simulator()

    def forever():
        sim.schedule(1.0, forever)

    sim.schedule(1.0, forever)
    with pytest.raises(SimulationError):
        sim.run_until(lambda: False, max_events=100)
    assert sim.events_run == 100


def test_run_until_succeeds_on_the_last_allowed_event():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(1)
        if len(fired) < 10:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run_until(lambda: len(fired) == 10, max_events=10)
    assert len(fired) == 10


def test_mass_cancellation_keeps_queue_bounded():
    """Cancelling 10k timers compacts the heap instead of leaking."""
    sim = Simulator()
    live = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    dead = [sim.schedule(1000.0 + i, lambda: None) for i in range(10_000)]
    for handle in dead:
        sim.cancel(handle)
    assert sim.pending_events() == 100
    # The heap holds the live events plus at most a compaction
    # threshold's worth of cancelled stragglers -- not all 10k.
    assert len(sim._queue) < 100 + 300
    sim.run()
    assert sim.events_run == 100
    assert live[0].cancelled is False


def test_cancel_after_execution_keeps_counts_consistent():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    later = sim.schedule(2.0, lambda: None)
    sim.run()
    sim.cancel(handle)  # already ran: must not corrupt the live count
    sim.cancel(handle)  # double-cancel: idempotent
    sim.cancel(later)
    assert sim.pending_events() == 0
    assert sim._cancelled_in_queue == 0


def test_pending_events_is_live_count_through_churn():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(500)]
    for handle in handles[::2]:
        sim.cancel(handle)
    assert sim.pending_events() == 250
    sim.run(max_events=100)
    assert sim.pending_events() == 150
