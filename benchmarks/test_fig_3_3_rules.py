"""Figure 3.3 -- Simple selection rules.

The two rules of the figure, applied across a synthetic record stream:
measures filter selection throughput.
"""

from benchmarks.conftest import HOSTS, synthetic_send_records
from repro.filtering.descriptions import default_description_set
from repro.filtering.rules import parse_rules

FIGURE_3_3_RULES = """\
machine=3, cpuTime<10000
machine=1, type=1, sock=4112, destName=inet:green:6001
"""

N_RECORDS = 1000


def test_fig_3_3_simple_rules(benchmark):
    descriptions = default_description_set()
    records = [
        descriptions.decode_message(raw, HOSTS)
        for raw in synthetic_send_records(N_RECORDS)
    ]
    rules = parse_rules(FIGURE_3_3_RULES)

    def select():
        return [r for r in records if rules.apply(r) is not None]

    accepted = benchmark(select)
    # First rule: everything from machine 3 (time stamps here are small).
    assert all(
        r["machine"] == 3
        or (r["machine"] == 1 and r["sock"] == 4112)
        for r in accepted
    )
    assert 0 < len(accepted) < N_RECORDS
    print(
        "\n[fig 3.3] {0}/{1} records accepted by the two simple rules".format(
            len(accepted), N_RECORDS
        )
    )
