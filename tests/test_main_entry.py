"""The ``python -m repro`` entry point."""

from repro.__main__ import _available, main


def test_lists_examples(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "quickstart" in out
    assert "tsp_study" in out


def test_unknown_example_fails(capsys):
    assert main(["no_such_example"]) == 1
    assert "unknown example" in capsys.readouterr().out


def test_available_finds_all_seven():
    names = _available()
    assert {
        "quickstart",
        "tsp_study",
        "acquire_server",
        "custom_filter",
        "clock_skew_ordering",
        "debug_hang",
        "measure_wordcount",
    } <= set(names)
