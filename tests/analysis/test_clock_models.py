"""Clock model (offset + drift) recovery from message pairs."""

import pytest

from repro.analysis.ordering import estimate_clock_models
from tests.analysis.harness import TraceBuilder


def _drifting_pingpong(offset=700.0, rate=1.002, rounds=12, gap=500.0, delay=2.0):
    """Machine 1 keeps true time; machine 2's clock is
    local = offset + rate * true.  Messages bounce every ``gap`` ms
    with one-way delay ``delay``."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 0, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, int(offset), sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    t = 10.0
    for __ in range(rounds):
        b.send(1, 10, int(t), sock=400, nbytes=8)
        b.receive(2, 20, int(offset + rate * (t + delay)), sock=510, nbytes=8,
                  source=cn)
        b.send(2, 20, int(offset + rate * (t + delay)), sock=510, nbytes=8)
        b.receive(1, 10, int(t + 2 * delay), sock=400, nbytes=8, source=sn)
        t += gap
    return b.build()


def test_reference_machine_is_identity():
    models = estimate_clock_models(_drifting_pingpong())
    assert models[1] == (0.0, 1.0)


def test_offset_and_rate_recovered():
    offset, rate = 700.0, 1.002
    models = estimate_clock_models(_drifting_pingpong(offset=offset, rate=rate))
    est_offset, est_rate = models[2]
    assert est_rate == pytest.approx(rate, abs=2e-4)
    assert est_offset == pytest.approx(offset, abs=10.0)


def test_negative_drift_recovered():
    models = estimate_clock_models(_drifting_pingpong(offset=-300.0, rate=0.998))
    est_offset, est_rate = models[2]
    assert est_rate == pytest.approx(0.998, abs=2e-4)
    assert est_offset == pytest.approx(-300.0, abs=10.0)


def test_ideal_clocks_give_identity_model():
    models = estimate_clock_models(_drifting_pingpong(offset=0.0, rate=1.0))
    est_offset, est_rate = models[2]
    assert est_rate == pytest.approx(1.0, abs=1e-4)
    assert est_offset == pytest.approx(0.0, abs=5.0)


def test_one_way_traffic_falls_back_to_offset_only():
    b = TraceBuilder()
    b.connect(1, 10, 0, sock=1, sock_name="inet:red:1", peer_name="inet:g:2")
    b.send(1, 10, 100, sock=2, nbytes=8, dest="inet:green:6000")
    b.receive(2, 20, 400, sock=3, nbytes=8, source="inet:red:9")
    models = estimate_clock_models(b.build())
    __, rate = models[2]
    assert rate == 1.0  # no drift information available


def _chain_trace(offset_b=500.0, offset_c=800.0, delay=2.0, rounds=4, gap=100.0):
    """Machines 1 <-> 2 <-> 3 with two-way traffic on each link but no
    direct 1 <-> 3 traffic; clocks of 2 and 3 run constant offsets
    ahead of 1."""
    b = TraceBuilder()
    ab_c, ab_s = "inet:red:1024", "inet:green:5000"
    bc_c, bc_s = "inet:green:1024", "inet:blue:5000"
    b.connect(1, 10, 0, sock=400, sock_name=ab_c, peer_name=ab_s)
    b.accept(2, 20, int(offset_b), sock=500, new_sock=510, sock_name=ab_s, peer_name=ab_c)
    b.connect(2, 20, int(offset_b), sock=401, sock_name=bc_c, peer_name=bc_s)
    b.accept(3, 30, int(offset_c), sock=501, new_sock=520, sock_name=bc_s, peer_name=bc_c)
    t = 10.0
    for __ in range(rounds):
        b.send(1, 10, int(t), sock=400, nbytes=8)
        b.receive(2, 20, int(offset_b + t + delay), sock=510, nbytes=8, source=ab_c)
        b.send(2, 20, int(offset_b + t + delay), sock=510, nbytes=8)
        b.receive(1, 10, int(t + 2 * delay), sock=400, nbytes=8, source=ab_s)
        b.send(2, 20, int(offset_b + t + delay), sock=401, nbytes=8)
        b.receive(3, 30, int(offset_c + t + 2 * delay), sock=520, nbytes=8, source=bc_c)
        b.send(3, 30, int(offset_c + t + 2 * delay), sock=520, nbytes=8)
        b.receive(2, 20, int(offset_b + t + 3 * delay), sock=401, nbytes=8, source=bc_s)
        t += gap
    return b.build()


def test_fallback_resolves_offset_transitively_without_direct_traffic():
    """Machine 3 never talks to the reference: no drift fit is
    possible, but the offset-only fallback still recovers its offset
    through machine 2."""
    models = estimate_clock_models(_chain_trace(offset_b=500.0, offset_c=800.0))
    offset3, rate3 = models[3]
    assert rate3 == 1.0  # fallback never invents a rate
    assert offset3 == pytest.approx(800.0, abs=10.0)
    # The directly-connected machine still gets the full fit.
    offset2, rate2 = models[2]
    assert rate2 == pytest.approx(1.0, abs=1e-3)
    assert offset2 == pytest.approx(500.0, abs=10.0)


def test_silent_machine_falls_back_to_identity_model():
    """A machine with events but no matched messages at all (here just
    a process termination) cannot be placed: identity model."""
    b = TraceBuilder()
    cn, sn = "inet:red:1024", "inet:green:5000"
    b.connect(1, 10, 0, sock=400, sock_name=cn, peer_name=sn)
    b.accept(2, 20, 0, sock=500, new_sock=510, sock_name=sn, peer_name=cn)
    b.send(1, 10, 10, sock=400, nbytes=8)
    b.receive(2, 20, 12, sock=510, nbytes=8, source=cn)
    b.send(2, 20, 13, sock=510, nbytes=8)
    b.receive(1, 10, 15, sock=400, nbytes=8, source=sn)
    b.termproc(3, 30, 50)
    models = estimate_clock_models(b.build())
    assert models[3] == (0.0, 1.0)


def test_empty_trace_has_no_models():
    assert estimate_clock_models(TraceBuilder().build()) == {}


def test_live_drifting_cluster_model_recovery():
    """End to end: a cluster whose green clock drifts fast; the model
    recovered from the trace matches the configured drift."""
    from repro.analysis import Trace
    from repro.core.cluster import Cluster
    from repro.core.session import MeasurementSession
    from repro.programs import install_all

    drift_ppm = 2000.0  # exaggerated for a short run
    skews = {"green": (400.0, drift_ppm)}
    cluster = Cluster(seed=83, clock_skew=skews)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob pp")
    session.command("addprocess pp red pingpongserver 5100 30")
    session.command("addprocess pp green pingpongclient red 5100 30")
    session.command("setflags pp send receive")
    session.command("startjob pp")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    red = cluster.host_table.lookup("red").host_id
    green = cluster.host_table.lookup("green").host_id
    models = estimate_clock_models(trace, reference=red)
    __, rate = models[green]
    assert rate == pytest.approx(1.0 + drift_ppm / 1e6, abs=5e-3)
