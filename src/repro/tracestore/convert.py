"""Converting between legacy text logs and binary stores.

A text log line is a decoded record; packing re-encodes each record to
its Appendix-A wire message (via :meth:`MessageCodec.encode_record`)
and marks reduced-away fields in the frame's discard mask, so
``pack -> scan`` yields exactly the records ``parse_trace`` would.

Text logs carry host names only in display form ("inet:red:6101"), so
packing builds a host table from the names it sees; the assigned ids
travel in each sealed segment's footer and the reader's codec maps
them back to the same display strings.
"""

from repro.filtering.records import parse_trace
from repro.metering.messages import (
    BODY_FIELDS,
    EVENT_NAMES,
    MessageCodec,
    record_fields,
)
from repro.tracestore import format as sformat
from repro.tracestore.writer import StoreWriter, collect_ops

#: Record-dict keys that are not wire fields (derived on decode).
_DERIVED_KEYS = frozenset({"event", "size"})


def host_names_from_records(records):
    """Assign stable host ids to every Internet host name that appears
    in a record's NAME-field display strings."""
    hosts = set()
    for record in records:
        event = record.get("event")
        if event not in BODY_FIELDS:
            continue
        for name, kind in BODY_FIELDS[event]:
            value = record.get(name)
            if kind == "name" and isinstance(value, str) and value.startswith("inet:"):
                host = value.split(":")[1]
                if host and not host.isdigit():
                    hosts.add(host)
    return {i + 1: host for i, host in enumerate(sorted(hosts))}


def wire_pairs(records, codec):
    """(payload, mask) per record; fields missing from the record are
    encoded as zero and flagged in the mask."""
    pairs = []
    for record in records:
        event = record.get("event") or EVENT_NAMES.get(record.get("traceType"))
        if event not in BODY_FIELDS:
            continue  # not an Appendix-A record; text logs may hold anything
        missing = [
            name
            for name in record_fields(event)
            if name not in record and name not in _DERIVED_KEYS
        ]
        # "size" is derived, always recomputed by encode_record.
        mask = sformat.discard_mask(event, set(missing) - {"size"})
        pairs.append((codec.encode_record(dict(record, event=event)), mask))
    return pairs


def pack_records(records, base, segment_bytes=sformat.DEFAULT_SEGMENT_BYTES,
                 host_names=None, writer_driver=None, compress=False):
    """Pack decoded records into a store.

    ``writer_driver(writer)`` applies the writer's ops to a medium
    (e.g. :func:`~repro.tracestore.writer.flush_to_files`); without
    one, returns a dict path -> bytes.  Returns (result, writer).
    ``compress=True`` writes each sealed segment's data region as one
    zlib blob (``trace pack --compress``: offline packing is the one
    place the compressed writer's weaker crash-loss bound is free).
    """
    if host_names is None:
        host_names = host_names_from_records(records)
    codec = MessageCodec(host_names)
    writer = StoreWriter(base, segment_bytes=segment_bytes,
                         host_names=host_names, compress=compress)
    sink = {} if writer_driver is None else None
    for payload, mask in wire_pairs(records, codec):
        writer.append(payload, mask)
        if writer_driver is None:
            collect_ops(sink, writer)
        else:
            writer_driver(writer)
    writer.close()
    if writer_driver is None:
        collect_ops(sink, writer)
        return {path: bytes(data) for path, data in sink.items()}, writer
    writer_driver(writer)
    return None, writer


def pack_text(text, base, segment_bytes=sformat.DEFAULT_SEGMENT_BYTES,
              host_names=None, writer_driver=None, compress=False):
    """Pack a legacy text log (the ``trace pack`` CLI)."""
    return pack_records(
        parse_trace(text),
        base,
        segment_bytes=segment_bytes,
        host_names=host_names,
        writer_driver=writer_driver,
        compress=compress,
    )
