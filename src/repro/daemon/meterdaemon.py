"""The meterdaemon guest program (Section 3.5).

Main loop: "A meterdaemon spends most of its time listening for an IPC
connection request from a controller process" -- plus, here, watching
its children (termination notifications) and the per-process I/O
gateway sockets (Section 3.5.2).

Request handling is one-connection-per-exchange: accept, read one
request frame, execute, reply, close ("the stream connection between
the controller and a meterdaemon exists for the duration of a single
exchange of messages").
"""

from repro import guestlib
from repro.daemon import protocol
from repro.filtering.standard import log_path_for
from repro.kernel import defs
from repro.kernel.errno import SyscallError
from repro.metering import flags as mflags

#: Well-known port every meterdaemon listens on.
METERDAEMON_PORT = 3425


class _DaemonState:
    """Host-local bookkeeping for one meterdaemon."""

    def __init__(self):
        #: child pid -> {control (host, port), jobname, procname}
        self.children = {}
        #: gateway fd -> child pid (stdio forwarding)
        self.gateways = {}
        self.requests_served = 0


def meterdaemon(sys, argv):
    """Guest main.  argv: optionally [port]."""
    port = int(argv[0]) if argv else METERDAEMON_PORT
    state = _DaemonState()

    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", port))
    yield sys.listen(listen_fd, defs.SOMAXCONN)

    while True:
        ready, child_events = yield sys.select(
            [listen_fd] + list(state.gateways), want_children=True
        )
        # Drain I/O gateways before handling terminations so a child's
        # final output is not lost with its gateway.
        for fd in ready:
            if fd == listen_fd:
                conn, __ = yield sys.accept(listen_fd)
                yield from _serve_request(sys, state, conn)
                yield sys.close(conn)
            elif fd in state.gateways:
                yield from _forward_output(sys, state, fd)
        for event in child_events:
            yield from _report_termination(sys, state, event)


# ----------------------------------------------------------------------
# Notifications (daemon -> controller)
# ----------------------------------------------------------------------


#: Notification delivery policy: a termination or output report is
#: retried across transient failures (controller briefly unreachable,
#: partition healing) before the daemon gives up on it.
NOTIFY_ATTEMPTS = 4
NOTIFY_BACKOFF_MS = 25.0
NOTIFY_BACKOFF_CAP_MS = 200.0
NOTIFY_CONNECT_TIMEOUT_MS = 1000.0


def _notify_controller(sys, address, payload):
    """Connect to a controller's notification socket and send one frame.

    Returns True if the frame was sent.  Transient connection failures
    are retried with capped, jittered exponential backoff; hard errors
    (the controller is really gone) abandon the notification, since
    there is nobody left to tell.
    """
    host, port = address
    delay = NOTIFY_BACKOFF_MS
    for attempt in range(NOTIFY_ATTEMPTS):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, (host, port), NOTIFY_CONNECT_TIMEOUT_MS)
            yield from guestlib.send_frame(sys, fd, payload)
            yield sys.close(fd)
            return True
        except SyscallError as err:
            yield sys.close(fd)
            if err.errno not in guestlib.TRANSIENT_ERRNOS:
                return False  # controller gone; nothing useful to do
            if attempt + 1 < NOTIFY_ATTEMPTS:
                yield from guestlib.backoff_sleep(sys, delay)
                delay = min(delay * 2.0, NOTIFY_BACKOFF_CAP_MS)
    return False


def _report_termination(sys, state, event):
    """SIGCHLD path: tell the responsible controller (Section 3.5.1)."""
    child = state.children.pop(event["pid"], None)
    if child is None:
        return
    for fd, pid in list(state.gateways.items()):
        if pid == event["pid"]:
            yield sys.close(fd)
            del state.gateways[fd]
    hostname = yield sys.hostname()
    payload = protocol.encode(
        protocol.TERMINATION_NOTIFY,
        pid=event["pid"],
        machine=hostname,
        reason=event["reason"],
        status=event["status"],
        jobname=child.get("jobname"),
        procname=child.get("procname"),
    )
    yield from _notify_controller(sys, child["control"], payload)


def _forward_output(sys, state, fd):
    """Relay a child's standard output to its controller (3.5.2)."""
    pid = state.gateways[fd]
    data = yield sys.read(fd, 2048)
    child = state.children.get(pid)
    if child is None:
        return
    hostname = yield sys.hostname()
    payload = protocol.encode(
        protocol.OUTPUT_NOTIFY,
        pid=pid,
        machine=hostname,
        procname=child.get("procname"),
        data=data.decode("ascii", "replace"),
    )
    yield from _notify_controller(sys, child["control"], payload)


# ----------------------------------------------------------------------
# Request dispatch
# ----------------------------------------------------------------------


def _serve_request(sys, state, conn):
    try:
        payload = yield from guestlib.recv_frame(sys, conn)
    except SyscallError:
        return  # requester's machine died mid-request
    if payload is None:
        return
    state.requests_served += 1
    try:
        msg_type, body = protocol.decode(payload)
        handler = _HANDLERS.get(msg_type)
        if handler is None:
            reply = protocol.error_reply("unknown request type %r" % msg_type)
        else:
            reply = yield from handler(sys, state, body)
    except SyscallError as err:
        reply = protocol.error_reply(str(err))
    except Exception as err:  # malformed frame/body: survive it
        reply = protocol.error_reply("bad request: %s" % err)
    try:
        yield from guestlib.send_frame(sys, conn, reply)
    except SyscallError:
        pass  # requester hung up before the reply; nothing to do


def _check_account(sys, uid):
    allowed = yield sys.hasaccount(uid)
    if not allowed:
        raise SyscallError(1, "uid %d has no account on this machine" % uid)


def _connect_meter_socket(sys, filter_host, filter_port):
    """Create the kernel end of a meter connection: a stream socket in
    the Internet domain, connected to the filter (Section 4.1)."""
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.connect(fd, (filter_host, filter_port))
    return fd


def _handle_create(sys, state, body):
    """Type 11: create a (suspended) metered process."""
    uid = body["uid"]
    yield from _check_account(sys, uid)
    filename = body["filename"]

    # The I/O gateway: a local datagram pair, one end the child's stdio
    # (Section 3.5.2: datagrams "are reliable when used within a single
    # machine").
    gw_daemon, gw_child = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_DGRAM)
    pid = yield sys.forkexec(
        filename,
        argv=body.get("params", []),
        stdio_fd=gw_child,
        start=False,
        uid=uid,
    )
    yield sys.close(gw_child)

    if body.get("filter_host"):
        meter_fd = yield from _connect_meter_socket(
            sys, body["filter_host"], body["filter_port"]
        )
        yield sys.setmeter(pid, body.get("meter_flags", 0), meter_fd)
        yield sys.close(meter_fd)

    state.children[pid] = {
        "control": (body["control_host"], body["control_port"]),
        "jobname": body.get("jobname"),
        "procname": body.get("procname"),
    }
    state.gateways[gw_daemon] = pid
    return protocol.encode(protocol.CREATE_REPLY, pid=pid, status=protocol.OK)


def _handle_create_filter(sys, state, body):
    """Type 12: create a filter process.

    The daemon binds the meter listening socket and installs it as the
    filter's standard input, then reports the socket's port so the
    controller can hand (literal host, port) to other daemons
    (Section 3.5.4).
    """
    uid = body["uid"]
    yield from _check_account(sys, uid)
    meter_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(meter_fd, ("", 0))
    yield sys.listen(meter_fd, defs.SOMAXCONN)
    name = yield sys.getsockname(meter_fd)

    filtername = body["filtername"]
    log_path = log_path_for(
        filtername,
        directory=body.get("log_directory"),
        log_format=body.get("log_format", "text"),
    )
    argv = [
        filtername,
        log_path,
        body.get("descriptions", "descriptions"),
        body.get("templates", "templates"),
    ]
    pid = yield sys.forkexec(
        body.get("filterfile", "filter"),
        argv=argv,
        stdio_fd=meter_fd,
        start=True,
        uid=uid,
    )
    yield sys.close(meter_fd)
    state.children[pid] = {
        "control": (body["control_host"], body["control_port"]),
        "jobname": None,
        "procname": filtername,
    }
    hostname = yield sys.hostname()
    return protocol.encode(
        protocol.CREATE_FILTER_REPLY,
        pid=pid,
        status=protocol.OK,
        meter_host=hostname,
        meter_port=name.port,
        log_path=log_path,
    )


def _require_same_user(sys, uid, pid):
    stat = yield sys.procstat(pid)
    if uid != 0 and stat["uid"] != uid:
        raise SyscallError(1, "process %d belongs to uid %d" % (pid, stat["uid"]))
    return stat


def _handle_setflags(sys, state, body):
    """Type 13: change a process's meter flags."""
    yield from _require_same_user(sys, body["uid"], body["pid"])
    yield sys.setmeter(body["pid"], body["flags"], mflags.NO_CHANGE)
    return protocol.encode(protocol.SETFLAGS_REPLY, status=protocol.OK)


def _handle_signal(sys, state, body):
    """Type 14: start/stop/kill via a signal."""
    yield from _require_same_user(sys, body["uid"], body["pid"])
    yield sys.kill(body["pid"], body["sig"])
    return protocol.encode(protocol.SIGNAL_REPLY, status=protocol.OK)


def _handle_acquire(sys, state, body):
    """Type 15: meter an already-running process (Section 4.3 acquire).

    "no changes are made to the handling of the processes' I/O ...
    monitoring is transparent to the executing processes."
    """
    uid = body["uid"]
    yield from _check_account(sys, uid)
    yield from _require_same_user(sys, uid, body["pid"])
    meter_fd = yield from _connect_meter_socket(
        sys, body["filter_host"], body["filter_port"]
    )
    yield sys.setmeter(body["pid"], body.get("meter_flags", 0), meter_fd)
    yield sys.close(meter_fd)
    return protocol.encode(protocol.ACQUIRE_REPLY, status=protocol.OK)


def _handle_unmeter(sys, state, body):
    """Type 16: take down a process's meter connection (removejob of an
    acquired process: it "will not continue to be metered ... but the
    process continues to execute")."""
    yield from _require_same_user(sys, body["uid"], body["pid"])
    yield sys.setmeter(body["pid"], mflags.NONE, mflags.SOCK_NONE)
    return protocol.encode(protocol.UNMETER_REPLY, status=protocol.OK)


def _handle_getlog(sys, state, body):
    """Type 17: return a filter log file's content."""
    content = yield from guestlib.read_whole_file(sys, body["path"])
    return protocol.encode(
        protocol.GETLOG_REPLY, status=protocol.OK, content=content
    )


#: Largest single stdin datagram pushed into a child's gateway.
_STDIN_CHUNK = 512


def _gateway_for(state, pid):
    for fd, child_pid in state.gateways.items():
        if child_pid == pid:
            return fd
    return None


def _handle_stdin(sys, state, body):
    """Type 25: standard input for a child (Section 3.5.2).

    Two variants: ``data`` carries literal user input ("The reverse
    path is traversed when sending standard input from the user to the
    process"); ``path`` names a local file that the daemon opens and
    redirects into the process ("The file is then opened by the
    meterdaemon, which redirects to it the standard input").
    """
    pid = body["pid"]
    gw_fd = _gateway_for(state, pid)
    if gw_fd is None:
        raise SyscallError(3, "no gateway for pid %d" % pid)
    if body.get("path") is not None:
        content = yield from guestlib.read_whole_file(sys, body["path"])
        data = content.encode("ascii")
    else:
        data = body.get("data", "").encode("ascii")
    for start in range(0, len(data), _STDIN_CHUNK):
        yield sys.write(gw_fd, data[start : start + _STDIN_CHUNK])
    return protocol.encode(protocol.STDIN_REPLY, status=protocol.OK)


_HANDLERS = {
    protocol.CREATE_REQ: _handle_create,
    protocol.CREATE_FILTER_REQ: _handle_create_filter,
    protocol.SETFLAGS_REQ: _handle_setflags,
    protocol.SIGNAL_REQ: _handle_signal,
    protocol.ACQUIRE_REQ: _handle_acquire,
    protocol.UNMETER_REQ: _handle_unmeter,
    protocol.GETLOG_REQ: _handle_getlog,
    protocol.STDIN_REQ: _handle_stdin,
}
