"""Figures 4.3-4.6 -- The programmer's session, stage by stage.

4.3: filter creation on blue; 4.4: process A created on red;
4.5: process B added on green; 4.6: A and B communicating, meter
messages flowing to the filter.  The bench replays the staged build-up
and verifies each figure's configuration before moving to the next.
"""

from benchmarks.conftest import fresh_session
from repro.analysis import Trace
from repro.kernel import defs


def _alive(machine, program):
    return [
        p for p in machine.procs.values()
        if p.program_name == program and p.state != defs.PROC_ZOMBIE
    ]


def _staged_session():
    session = fresh_session(seed=7)
    cluster = session.cluster
    stages = {}

    # Figure 4.3: the filter is created on blue via its meterdaemon.
    session.command("filter f1 blue")
    stages["4.3"] = len(_alive(cluster.machine("blue"), "filter")) == 1

    # Figure 4.4: process A created on red, suspended, wired to filter.
    session.command("newjob foo")
    session.command("addprocess foo red echoclient green 7777 3 16 1")
    red_procs = _alive(cluster.machine("red"), "echoclient")
    stages["4.4"] = (
        len(red_procs) == 1
        and red_procs[0].state == defs.PROC_EMBRYO
        and red_procs[0].meter_entry is not None
    )

    # Figure 4.5: process B added on green.
    session.command("addprocess foo green echoserver 7777 1")
    green_procs = _alive(cluster.machine("green"), "echoserver")
    stages["4.5"] = len(green_procs) == 1

    # Figure 4.6: the job runs; A and B communicate over IPC while
    # their meters stream events to the filter on blue.
    session.command("setflags foo send receive accept connect")
    session.command("startjob foo")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    stages["4.6"] = (
        len(trace.processes()) == 2
        and len(trace.by_type("send")) > 0
        and len(trace.by_type("accept")) == 1
    )
    return stages, trace


def test_figs_4_3_to_4_6_staged_buildup(benchmark):
    stages, trace = benchmark.pedantic(_staged_session, rounds=3, iterations=1)
    for figure, established in sorted(stages.items()):
        assert established, "figure {0} configuration not reached".format(figure)
    print(
        "\n[figs 4.3-4.6] all four stages reproduced; final trace has "
        "{0} events from 2 communicating processes".format(len(trace))
    )
