"""Custom filter processes (Section 3.4).

"Given one basic constraint, a user can write a custom filter.  This
one constraint is that a filter process must listen to its standard
input in order to receive meter messages from the kernel meter."

A user-written filter -- a per-process event counter that logs summary
lines instead of raw records -- is installed as an executable and used
through the ordinary ``filter`` command.
"""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.filtering.filterlib import MeterInbox
from repro.kernel import defs
from repro.metering.messages import MessageCodec


def counting_filter(sys, argv):
    """A custom filter: tallies events per (machine, pid) and rewrites
    its summary log after every batch."""
    filtername = argv[0] if argv else "counter"
    log_path = argv[1] if len(argv) > 1 else "/usr/tmp/%s.log" % filtername
    codec = MessageCodec((yield sys.hosttable()))
    counts = {}
    inbox = MeterInbox()
    while True:
        raw_messages = yield from inbox.wait(sys)
        if not raw_messages:
            continue
        for raw in raw_messages:
            record = codec.decode(raw)
            key = (record["machine"], record["pid"], record["event"])
            counts[key] = counts.get(key, 0) + 1
        lines = [
            "machine={0} pid={1} event={2} count={3}".format(*key, count)
            for key, count in sorted(counts.items())
        ]
        fd = yield sys.open(log_path, "w")
        yield sys.write(fd, ("\n".join(lines) + "\n").encode("ascii"))
        yield sys.close(fd)


def _chatter(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    for __ in range(7):
        yield sys.sendto(fd, b"x", ("green", 6000))
    yield sys.exit(0)


@pytest.fixture
def session():
    cluster = Cluster(seed=29)
    sess = MeasurementSession(cluster, control_machine="yellow")
    sess.install_program("chatter", _chatter)
    # Install the custom filter like any executable.
    sess.install_program("counterfilter", counting_filter)
    return sess


def test_custom_filter_via_filter_command(session):
    out = session.command("filter c1 blue counterfilter")
    assert "created" in out
    session.command("newjob j c1")
    session.command("addprocess j red chatter")
    session.command("setflags j send socket")
    session.command("startjob j")
    session.settle()
    __, log_text = session.find_filter_log("c1")
    assert "event=send count=7" in log_text
    assert "event=socket count=1" in log_text


def test_custom_and_standard_filters_coexist(session):
    session.command("filter std blue")
    session.command("filter c1 green counterfilter")
    session.command("newjob raw std")
    session.command("addprocess raw red chatter")
    session.command("setflags raw send")
    session.command("newjob counted c1")
    session.command("addprocess counted red chatter")
    session.command("setflags counted send")
    session.command("startjob raw")
    session.command("startjob counted")
    session.settle()
    __, std_text = session.find_filter_log("std")
    __, custom_text = session.find_filter_log("c1")
    assert std_text.count("event=send") == 7  # raw records
    assert "count=7" in custom_text  # the summary


def test_custom_filter_unknown_fields_format(session):
    """The custom filter's log format is its own business; getlog
    fetches it verbatim."""
    session.command("filter c1 blue counterfilter")
    session.command("newjob j c1")
    session.command("addprocess j red chatter")
    session.command("setflags j send")
    session.command("startjob j")
    session.settle()
    session.command("getlog c1 fetched")
    content = session.read_controller_file("fetched")
    assert "count=" in content
