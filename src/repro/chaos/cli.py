"""``python -m repro chaos`` -- run, replay, shrink, soak.

The search engine as an operator tool::

    python -m repro chaos run --profile mixed --seeds 0:25
    python -m repro chaos soak --schedules 25
    python -m repro chaos replay artifacts/chaos_dgram_pair_mixed_3.json
    python -m repro chaos shrink artifacts/chaos_dgram_pair_mixed_3.json

``run`` sweeps seed-derived schedules for one or more profiles and
exits 1 if any invariant was violated (artifacts land in
``--artifacts``).  ``soak`` cycles every profile for a schedule budget
and reports coverage and schedules/hour.  ``replay`` re-runs an
artifact and exits 0 only when the recorded verdict reproduces.
``shrink`` delta-debugs an artifact's schedule to a minimal repro.
"""

import json

from repro.chaos.artifact import (
    artifact_plan,
    artifact_scenario,
    build_artifact,
    load_artifact,
    replay_artifact,
    save_artifact,
)
from repro.chaos.oracles import (
    format_verdict,
    run_oracles,
    violated_names,
)
from repro.chaos.profiles import PROFILES
from repro.chaos.scenario import SCENARIOS, make_scenario, run_scenario
from repro.chaos.search import format_report, search
from repro.chaos.shrink import shrink_plan

CHAOS_USAGE = """\
usage: python -m repro chaos <subcommand>
  run [--scenario NAME] [--profile P1,P2] [--seeds A:B|a,b,c]
      [--cluster-seed N] [--artifacts DIR] [--bench FILE]
      [--shrink yes|no] [--sends N]
                     search seed-derived fault schedules; exit 1 on any
                     invariant violation (failures shrink to artifacts)
  soak [--scenario NAME] [--schedules N] [--cluster-seed N]
       [--artifacts DIR] [--bench FILE]
                     cycle every profile over a schedule budget and
                     report coverage, verdicts, and schedules/hour
  replay <artifact.json>
                     re-run a chaos artifact; exit 0 only when the
                     recorded verdict reproduces
  shrink <artifact.json> [--out FILE] [--max-probes N]
                     delta-debug an artifact's schedule to a minimal
                     failing repro (writes <artifact>.shrunk.json)
  scenarios: {0}
  profiles:  {1}""".format(
    " ".join(sorted(SCENARIOS)), " ".join(sorted(PROFILES))
)

_TRUTHY = ("yes", "true", "1", "on")


def _parse_flags(args, spec):
    """Tiny ``--flag value`` parser; spec maps flag -> coercion."""
    positional, flags = [], {}
    i = 0
    while i < len(args):
        token = args[i]
        if token.startswith("--"):
            name = token[2:]
            if name not in spec:
                raise ValueError("unknown option --{0}".format(name))
            if i + 1 >= len(args):
                raise ValueError("option --{0} needs a value".format(name))
            flags[name] = spec[name](args[i + 1])
            i += 2
        else:
            positional.append(token)
            i += 1
    return positional, flags


def _parse_seeds(text):
    """``A:B`` -> range(A, B); ``a,b,c`` -> those seeds; ``N`` -> [N]."""
    text = str(text)
    if ":" in text:
        start, stop = text.split(":", 1)
        seeds = list(range(int(start), int(stop)))
    else:
        seeds = [int(part) for part in text.split(",") if part != ""]
    if not seeds:
        raise ValueError("empty seed set {0!r}".format(text))
    return seeds


def _scenario_from_flags(flags):
    kwargs = {}
    if "sends" in flags:
        kwargs["sends"] = flags["sends"]
    return (
        make_scenario(flags.get("scenario", "dgram_pair"), **kwargs),
        kwargs,
    )


def _write_bench(report, path):
    with open(path, "w", encoding="ascii") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("report written to {0}".format(path))


def _chaos_run(args):
    spec = {
        "scenario": str,
        "profile": str,
        "seeds": _parse_seeds,
        "cluster-seed": int,
        "artifacts": str,
        "bench": str,
        "shrink": str,
        "sends": int,
    }
    positional, flags = _parse_flags(args, spec)
    if positional:
        print(CHAOS_USAGE)
        return 1
    scenario, __ = _scenario_from_flags(flags)
    profiles = [
        name for name in flags.get("profile", "mixed").split(",") if name
    ]
    report = search(
        scenario,
        profiles=profiles,
        seeds=flags.get("seeds", list(range(5))),
        cluster_seed=flags.get("cluster-seed", 7),
        shrink_failures=flags.get("shrink", "yes").lower() in _TRUTHY,
        artifact_dir=flags.get("artifacts"),
        log=print,
    )
    for line in format_report(report):
        print(line)
    if "bench" in flags:
        _write_bench(report, flags["bench"])
    return 0 if not report["violations"] else 1


def _chaos_soak(args):
    spec = {
        "scenario": str,
        "schedules": int,
        "cluster-seed": int,
        "artifacts": str,
        "bench": str,
        "sends": int,
    }
    positional, flags = _parse_flags(args, spec)
    if positional:
        print(CHAOS_USAGE)
        return 1
    scenario, __ = _scenario_from_flags(flags)
    budget = max(1, flags.get("schedules", 25))
    profiles = sorted(PROFILES)
    seeds_per_profile = max(1, (budget + len(profiles) - 1) // len(profiles))
    report = search(
        scenario,
        profiles=profiles,
        seeds=list(range(seeds_per_profile)),
        cluster_seed=flags.get("cluster-seed", 7),
        shrink_failures=True,
        artifact_dir=flags.get("artifacts"),
        log=print,
    )
    for line in format_report(report):
        print(line)
    if "bench" in flags:
        _write_bench(report, flags["bench"])
    return 0 if not report["violations"] else 1


def _chaos_replay(args):
    positional, __ = _parse_flags(args, {})
    if len(positional) != 1:
        print(CHAOS_USAGE)
        return 1
    artifact = load_artifact(positional[0])
    verdict, reproduced = replay_artifact(artifact)
    for line in format_verdict(verdict):
        print(line)
    recorded = artifact["verdict"]
    print(
        "recorded verdict: {0}{1}".format(
            "OK" if recorded["ok"] else "VIOLATED",
            " " + ",".join(recorded["violated"]) if recorded["violated"] else "",
        )
    )
    print("reproduced" if reproduced else "DID NOT REPRODUCE")
    return 0 if reproduced else 1


def _chaos_shrink(args):
    positional, flags = _parse_flags(
        args, {"out": str, "max-probes": int}
    )
    if len(positional) != 1:
        print(CHAOS_USAGE)
        return 1
    path = positional[0]
    artifact = load_artifact(path)
    scenario = artifact_scenario(artifact)
    plan = artifact_plan(artifact, scenario)
    cluster_seed = artifact["cluster_seed"]
    oracles = artifact.get("oracles")
    baseline = run_scenario(scenario, cluster_seed)
    original = set(artifact["verdict"]["violated"])
    if not original:
        print("artifact verdict is OK; nothing to shrink")
        return 1

    def fails(candidate):
        run = run_scenario(scenario, cluster_seed, candidate)
        verdict = run_oracles(run, baseline, oracles)
        return bool(original & set(violated_names(verdict)))

    result = shrink_plan(
        plan, fails, max_probes=flags.get("max-probes", 200)
    )
    print(result.summary())
    run = run_scenario(scenario, cluster_seed, result.plan)
    verdict = run_oracles(run, baseline, oracles)
    shrunk = build_artifact(
        scenario.name,
        cluster_seed,
        result.plan,
        verdict,
        scenario_kwargs=artifact["scenario"].get("kwargs"),
        profile=artifact.get("profile"),
        gen_seed=artifact.get("gen_seed"),
        oracles=oracles,
        shrink_info={
            "original_events": result.original_events,
            "probes": result.probes,
        },
    )
    out = flags.get("out") or (
        path[: -len(".json")] if path.endswith(".json") else path
    ) + ".shrunk.json"
    save_artifact(shrunk, out)
    print("shrunk artifact: {0}".format(out))
    for line in format_verdict(verdict):
        print(line)
    return 0


def chaos_main(args):
    handlers = {
        "run": _chaos_run,
        "soak": _chaos_soak,
        "replay": _chaos_replay,
        "shrink": _chaos_shrink,
    }
    if not args or args[0] not in handlers:
        print(CHAOS_USAGE)
        return 1
    try:
        return handlers[args[0]](args[1:])
    except (FileNotFoundError, ValueError) as err:
        print("chaos {0}: {1}".format(args[0], err))
        return 1
