"""Datagram producer/consumer: the connectionless side of Section 3.1.

Deliberately exercises the datagram properties the paper calls out:
unguaranteed, possibly reordered delivery -- the consumer counts what
actually arrived.
"""

from repro.kernel import defs


def dgram_consumer(sys, argv):
    """argv: [port, expected, timeout_ms] -- receive until ``expected``
    datagrams arrived or ``timeout_ms`` passes with nothing new, then
    report the count on stdout and exit with it as status."""
    port = int(argv[0]) if len(argv) > 0 else 6000
    expected = int(argv[1]) if len(argv) > 1 else 100
    timeout_ms = float(argv[2]) if len(argv) > 2 else 500.0

    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", port))
    received = 0
    while received < expected:
        ready, __ = yield sys.select([fd], timeout_ms=timeout_ms)
        if not ready:
            break  # the missing ones were lost; that's datagrams
        __data, __src = yield sys.recvfrom(fd, defs.MAX_DGRAM_BYTES)
        received += 1
    yield sys.write(1, b"received %d\n" % received)
    yield sys.exit(received)


def dgram_producer(sys, argv):
    """argv: [dest, port, count, msgbytes, gap_ms]."""
    dest = argv[0] if len(argv) > 0 else "red"
    port = int(argv[1]) if len(argv) > 1 else 6000
    count = int(argv[2]) if len(argv) > 2 else 100
    msgbytes = int(argv[3]) if len(argv) > 3 else 64
    gap_ms = float(argv[4]) if len(argv) > 4 else 1.0

    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    payload = b"d" * msgbytes
    for __ in range(count):
        yield sys.sendto(fd, payload, (dest, port))
        if gap_ms > 0:
            yield sys.sleep(gap_ms)
    yield sys.close(fd)
    yield sys.exit(0)
