"""The binary trace store: segmented, indexed meter logs.

The paper's filters log accepted records as text lines (Section 3.4);
at Appendix-B scale that is fine, but the ROADMAP's large computations
emit millions of meter messages, and slurping whole text logs defeats
analysis.  This package keeps accepted records in their Appendix-A
wire encoding inside fixed-capacity segment files, each sealed with an
index footer, so analyses can stream exactly the records they need:

- :mod:`repro.tracestore.format` -- segments, frames, footers;
- :mod:`repro.tracestore.writer` -- :class:`StoreWriter` (batched,
  crash-safe appends; usable from filter guests);
- :mod:`repro.tracestore.reader` -- :class:`StoreReader` (streaming
  scans with segment pushdown) and :func:`merge_scan`;
- :mod:`repro.tracestore.convert` -- text log <-> store packing.
"""

from repro.tracestore.format import (
    DEFAULT_SEGMENT_BYTES,
    discard_mask,
    masked_fields,
    zero_masked_bytes,
)
from repro.tracestore.convert import pack_records, pack_text
from repro.tracestore.reader import ScanStats, Segment, StoreReader, merge_scan
from repro.tracestore.writer import (
    StoreWriter,
    collect_ops,
    flush_to_files,
    flush_to_fs,
    flush_to_guest,
    next_segment_index,
    segment_path,
)

__all__ = [
    "DEFAULT_SEGMENT_BYTES",
    "discard_mask",
    "masked_fields",
    "zero_masked_bytes",
    "pack_records",
    "pack_text",
    "ScanStats",
    "Segment",
    "StoreReader",
    "merge_scan",
    "StoreWriter",
    "collect_ops",
    "flush_to_files",
    "flush_to_fs",
    "flush_to_guest",
    "next_segment_index",
    "segment_path",
]
