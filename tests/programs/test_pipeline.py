"""The pipeline workload and its structural signature."""

from repro.analysis import CommunicationGraph, Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs
from repro.programs import install_all
from repro.programs.pipeline import pipeline_stage
from tests.conftest import run_guests


def _spawn_chain(cluster, nitems=8):
    machines = ["red", "green", "blue", "yellow"]
    procs = []
    for i, machine in enumerate(machines):
        if i == 0:
            role, my_port = "source", 0
        elif i == len(machines) - 1:
            role, my_port = "sink", 5600 + i
        else:
            role, my_port = "middle", 5600 + i
        next_host = machines[i + 1] if i + 1 < len(machines) else "red"
        next_port = 5600 + i + 1
        argv = [str(my_port), next_host, str(next_port), role, str(nitems), "2"]
        procs.append(cluster.spawn(machine, pipeline_stage, argv=argv, uid=100))
    return procs


def test_pipeline_processes_all_items(cluster):
    procs = _spawn_chain(cluster)
    cluster.run_until_exit(procs, max_events=2_000_000)
    assert all(p.exit_reason == defs.EXIT_NORMAL for p in procs)
    console = cluster.machine("yellow").console
    assert any("sink processed 8 items" in line for line in console)


def test_pipeline_trace_classifies_as_pipeline():
    cluster = Cluster(seed=51)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob p")
    session.command("addprocess p red pipelinestage 0 green 5601 source 6 2")
    session.command("addprocess p green pipelinestage 5601 blue 5602 middle 6 2")
    session.command("addprocess p blue pipelinestage 5602 red 0 sink 6 2")
    session.command("setflags p send receive accept connect")
    session.command("startjob p")
    session.settle()
    trace = Trace(session.read_trace("f1"))
    graph = CommunicationGraph(trace)
    assert graph.shape() == "pipeline"
    # The sink's stdout write goes to its I/O gateway (a send without a
    # matched receive inside the job) -- the *message* edges still form
    # the chain source -> middle -> sink.
    message_edges = [
        (src, dst) for src, dst, data in graph.edges() if data["kind"] == "message"
    ]
    assert len(message_edges) == 2
