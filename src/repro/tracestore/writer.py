"""StoreWriter: batched, crash-safe appends to a segmented store.

The writer is deliberately I/O-free: :meth:`append` buffers frames and
turns them into a queue of *ops* -- ``("open", path)``,
``("write", path, bytes)``, ``("close", path)`` -- that a driver
applies to whatever medium holds the store:

- :func:`flush_to_guest` performs the ops with simulated syscalls, so
  the standard filter (a guest program) writes stores through the
  simulated filesystem exactly like its text log;
- :func:`flush_to_fs` applies them host-side to a machine's
  :class:`~repro.kernel.filesystem.FileSystem`;
- :func:`flush_to_files` applies them to the real OS filesystem (the
  ``trace pack`` CLI);
- :func:`collect_ops` applies them to a dict, for tests.

Crash safety: frames reach the medium in append order and the footer
is written only when a segment fills (or the writer is closed), so a
crash at any instant loses at most the frames still in the bounded
buffer; the torn tail segment stays readable by recovery scan.  A
restarted writer picks a fresh segment index and never rewrites bytes
it already flushed.
"""

import struct
import zlib

from repro.kernel import errno
from repro.kernel.errno import SyscallError
from repro.metering import messages
from repro.tracestore import format as sformat

#: Frames buffered in memory before the writer emits a write op.
DEFAULT_FLUSH_BYTES = 4096

SEGMENT_SUFFIX = ".seg"


def segment_path(base, index):
    return "{0}{1}{2:05d}".format(base, SEGMENT_SUFFIX, index)


class StoreWriter:
    """Append records (Appendix-A wire messages) to a segmented store."""

    def __init__(
        self,
        base,
        segment_bytes=sformat.DEFAULT_SEGMENT_BYTES,
        flush_bytes=DEFAULT_FLUSH_BYTES,
        start_index=0,
        host_names=None,
        auto_seal=True,
        version=sformat.FORMAT_VERSION,
        compress=False,
    ):
        self.base = base
        #: Segment format version to write.  Defaults to the current
        #: (v2, per-frame CRC32); v1 exists for compatibility tests and
        #: for producing stores an old reader must accept.
        if version not in sformat.SUPPORTED_VERSIONS:
            raise ValueError("unsupported segment version %r" % (version,))
        self.version = version
        #: Compressed segments hold their whole frame region in memory
        #: until seal (one zlib blob per segment on disk), so the
        #: bounded crash-loss guarantee does not apply: this mode is
        #: for offline packing (``trace pack --compress``), not for a
        #: live filter's log.
        if compress and version != sformat.FORMAT_VERSION:
            raise ValueError("compressed segments require format v2")
        self.compress = compress
        #: With auto_seal off, a full segment is sealed only when the
        #: caller says so (:meth:`maybe_seal`), letting the standard
        #: filter keep seals on batch-commit boundaries so a sealed
        #: segment never ends inside a half-committed batch.
        self.auto_seal = auto_seal
        self.segment_bytes = max(int(segment_bytes), 1)
        self.flush_bytes = max(int(flush_bytes), 1)
        self.host_names = dict(host_names or {})
        self.next_index = start_index
        self.records_appended = 0
        self.segments_sealed = 0
        self._ops = []
        self._buffer = []
        self._buffered = 0
        self._path = None
        self._stats = None
        self._offset = 0  # next frame offset within the open segment
        self._data_crc = 0  # running CRC32 over the open frame region

    # ------------------------------------------------------------------

    def append(self, payload, mask=0):
        """Queue one record.  ``payload`` is the raw wire message (with
        any reduction already applied); ``mask`` its discard bitmap."""
        if self._path is None:
            self._begin_segment()
        header = payload[: messages.HEADER_BYTES]
        machine = struct.unpack_from(">h", header, 4)[0]
        cpu_time = struct.unpack_from(">i", header, 8)[0]
        trace_type = struct.unpack_from(">i", header, 20)[0]
        event = messages.EVENT_NAMES.get(trace_type, str(trace_type))
        pid = 0
        if len(payload) >= messages.HEADER_BYTES + 4:
            # Every Appendix-A body starts with the pid long.
            pid = struct.unpack_from(">i", payload, messages.HEADER_BYTES)[0]
        self._stats.add(event, machine, pid, cpu_time, self._offset)
        frame = sformat.encode_frame(payload, mask, self.version)
        self._offset += len(frame)
        self._data_crc = zlib.crc32(frame, self._data_crc)
        self._buffer.append(frame)
        self._buffered += len(frame)
        self.records_appended += 1
        if self._buffered >= self.flush_bytes:
            self._drain_buffer()
        if self.auto_seal and self._offset >= self.segment_bytes:
            self._seal_segment()

    def append_marker(self, payload):
        """Queue one batch-marker frame (a kernel batch-sequence
        marker).  Markers are delivery-protocol control frames: they
        carry no record, never touch the footer index or
        ``records_appended``, and readers skip them."""
        if self._path is None:
            self._begin_segment()
        frame = sformat.encode_frame(payload, 0, self.version)
        self._offset += len(frame)
        self._data_crc = zlib.crc32(frame, self._data_crc)
        self._buffer.append(frame)
        self._buffered += len(frame)
        if self._buffered >= self.flush_bytes:
            self._drain_buffer()

    def maybe_seal(self):
        """Seal the open segment once it is past capacity; with
        ``auto_seal=False`` this is called at batch boundaries only."""
        if self._path is not None and self._offset >= self.segment_bytes:
            self._seal_segment()

    def sync(self):
        """Move everything buffered into the op queue (end of a meter
        batch: bounded buffering, not unbounded deferral)."""
        self._drain_buffer()

    def close(self):
        """Seal the open segment, if any records reached it."""
        if self._path is not None:
            self._seal_segment()

    def pending_ops(self):
        """Drain the queued driver ops."""
        ops, self._ops = self._ops, []
        return ops

    # ------------------------------------------------------------------

    def _begin_segment(self):
        self._path = segment_path(self.base, self.next_index)
        self.next_index += 1
        self._stats = sformat.SegmentStats(self.host_names)
        self._offset = sformat.SEGMENT_HEADER_BYTES
        self._data_crc = 0
        flags = sformat.FLAG_COMPRESSED if self.compress else 0
        self._ops.append(("open", self._path))
        self._ops.append(
            ("write", self._path, sformat.segment_header(self.version, flags))
        )

    def _drain_buffer(self):
        if self.compress:
            return  # the whole frame region compresses as one blob at seal
        if self._buffer:
            self._ops.append(("write", self._path, b"".join(self._buffer)))
            self._buffer = []
            self._buffered = 0

    def _seal_segment(self):
        stored_bytes = None
        if self.compress:
            blob = sformat.compress_region(b"".join(self._buffer))
            self._buffer = []
            self._buffered = 0
            stored_bytes = len(blob)
            self._ops.append(("write", self._path, blob))
        else:
            self._drain_buffer()
        footer = self._stats.footer(
            sformat.SEGMENT_HEADER_BYTES,
            self._offset,
            self.version,
            data_crc32=self._data_crc,
            stored_bytes=stored_bytes,
        )
        self._ops.append(("write", self._path, sformat.encode_footer(footer)))
        self._ops.append(("close", self._path))
        self.segments_sealed += 1
        self._path = None
        self._stats = None


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------


def flush_to_guest(sys, writer):
    """Apply pending ops with simulated syscalls (use inside a guest:
    ``yield from flush_to_guest(sys, writer)``).  Keeps one fd open per
    segment across calls."""
    fds = writer.__dict__.setdefault("_guest_fds", {})
    for op in writer.pending_ops():
        kind, path = op[0], op[1]
        if kind == "open":
            fds[path] = yield sys.open(path, "w")
        elif kind == "write":
            fd = fds.get(path)
            if fd is None:
                fd = fds[path] = yield sys.open(path, "a")
            yield sys.write(fd, op[2])
        else:  # close
            fd = fds.pop(path, None)
            if fd is not None:
                yield sys.close(fd)


def flush_to_fs(fs, writer):
    """Apply pending ops host-side to a simulated FileSystem."""
    for op in writer.pending_ops():
        kind, path = op[0], op[1]
        if kind == "open":
            fs.install(path, b"")
        elif kind == "write":
            if not fs.exists(path):
                fs.install(path, b"")
            fs.node(path).data.extend(op[2])


def flush_to_files(writer):
    """Apply pending ops to the real filesystem (the pack CLI)."""
    for op in writer.pending_ops():
        kind, path = op[0], op[1]
        if kind == "open":
            with open(path, "wb"):
                pass
        elif kind == "write":
            with open(path, "ab") as handle:
                handle.write(op[2])


def collect_ops(store, writer):
    """Apply pending ops to a dict path -> bytearray (tests)."""
    for op in writer.pending_ops():
        kind, path = op[0], op[1]
        if kind == "open":
            store[path] = bytearray()
        elif kind == "write":
            store.setdefault(path, bytearray()).extend(op[2])
    return store


def next_segment_index(sys, base):
    """Guest helper: first segment index not already on disk, so a
    relaunched filter appends new segments instead of clobbering the
    records a previous incarnation flushed."""
    index = 0
    while True:
        try:
            fd = yield sys.open(segment_path(base, index), "r")
        except SyscallError as err:
            if err.errno == errno.ENOENT:
                return index
            raise
        yield sys.close(fd)
        index += 1
