"""StoreReader: streaming, predicate-pushdown access to a trace store.

Reading never materializes a whole store: :meth:`StoreReader.scan` is
a generator that walks segments in order, consults each sealed
segment's footer first, and decodes only the segments that can contain
a matching record.  Unsealed tail segments (the writer crashed, or the
filter is still running) are recovered by scanning their
self-delimiting frames.

Damage handling is explicit, never silent:

- a segment whose header does not parse (foreign file, truncated or
  bit-rotted header) is skipped and counted in
  :attr:`ScanStats.segments_bad_header`, with the reason kept in
  :attr:`ScanStats.segment_errors`;
- in the default *strict* mode, a corrupt frame (v2 CRC mismatch, or a
  frame overrunning a sealed data region) raises
  :class:`~repro.tracestore.errors.CorruptSegmentError` -- the scan
  refuses to return a record stream it cannot vouch for;
- in *salvage* mode (``scan(salvage=True)``), the scan resynchronizes
  past corrupt byte ranges to the next verifiable frame, quarantines
  what it skipped, and accounts the loss in
  :attr:`ScanStats.bytes_quarantined` / :attr:`ScanStats.frames_corrupt`,
  so a damaged store degrades into "these records, minus this much
  quantified loss" instead of an exception or a lie.

:func:`merge_scan` merges several filters' stores into one stream
ordered by (header cpuTime, machine) -- the same heuristic interleaving
as :meth:`Trace.merge`, but computed with a k-way heap merge over lazy
streams instead of sorting a materialized list.
"""

import heapq

from repro.metering.messages import MessageCodec, is_batch_marker
from repro.tracestore import format as sformat
from repro.tracestore.errors import (
    BadSegmentHeaderError,
    CorruptSegmentError,
)
from repro.tracestore.writer import SEGMENT_SUFFIX

#: Segment integrity classes (``Segment.verify()`` / ``trace fsck``).
SEALED_CLEAN = "sealed-clean"
OPEN_CLEAN = "open-clean"
TORN_TAIL = "torn-tail"
CORRUPT_FRAME = "corrupt-frame"
BAD_HEADER = "bad-header"
FOREIGN = "foreign"


class Segment:
    """One segment file, parsed lazily.

    Construction touches only the 8-byte header and (for sealed
    segments) the footer/trailer bytes; the data region is neither
    copied nor inflated until a frame walk needs it.  ``data`` may be
    ``bytes``, a ``bytearray`` (a live filesystem buffer -- snapshotted
    to bytes on first use, so a scan never races the writing filter),
    or an ``mmap`` (``StoreReader.from_files`` -- the OS pages frames
    in on demand, and a pushdown-skipped segment costs two pages).

    A segment whose header fails to parse is still constructed --
    ``valid`` is False and ``header_error`` holds the typed error --
    so one damaged or foreign file can be reported and skipped instead
    of aborting access to the whole store.
    """

    def __init__(self, path, data):
        self.path = path
        self._raw = data
        self._snapshot = data if not isinstance(data, bytearray) else None
        self._region = None  # inflated frame region (compressed segments)
        self._region_damaged = False
        self.header_error = None
        try:
            self.version = sformat.parse_segment_header(data, path=path)
        except BadSegmentHeaderError as err:
            self.version = None
            self.header_error = err
        self.valid = self.header_error is None
        self.compressed = bool(
            self.valid
            and sformat.segment_flags(data) & sformat.FLAG_COMPRESSED
        )
        self.footer = sformat.parse_footer(data) if self.valid else None
        self.sealed = self.footer is not None
        if self.sealed:
            # The footer is CRC-protected; the header flag byte is not.
            # On a sealed segment the footer's own compression fields
            # therefore outrank the flag, so a single flipped flag bit
            # cannot make the reader inflate plain frames (or walk a
            # deflate stream as frames).
            self.compressed = bool(self.footer.get("compressed"))

    @property
    def data(self):
        """The segment bytes (bytearray sources are snapshotted once)."""
        if self._snapshot is None:
            self._snapshot = bytes(self._raw)
        return self._snapshot

    def frame_region(self, best_effort=False):
        """(buffer, start, end) of the frame bytes to walk.

        Plain segments return the segment buffer itself (zero-copy);
        compressed segments inflate their data region once and cache
        it, with offsets matching the footer's uncompressed
        coordinates (frames start right after the 8-byte header).  A
        sealed compressed region that fails to inflate raises
        :class:`CorruptFrameError`; with ``best_effort=True`` (salvage
        and verify paths) it degrades to whatever prefix inflates.
        """
        if not self.valid:
            return b"", 0, 0
        if not self.compressed:
            start, end = self.data_bounds()
            return self.data, start, end
        head = sformat.SEGMENT_HEADER_BYTES
        if self._region is None:
            data = self.data
            if self.sealed:
                blob = bytes(data[head : head + self.footer["stored_bytes"]])
                try:
                    raw = sformat.decompress_region(
                        blob, self.footer["raw_bytes"]
                    )
                except CorruptSegmentError as err:
                    if not best_effort:
                        raise CorruptFrameError(str(err), path=self.path)
                    self._region_damaged = True
                    raw = sformat.decompress_region(blob, None)
            else:
                raw = sformat.decompress_region(bytes(data[head:]), None)
            self._region = bytes(data[:head]) + raw
        elif self._region_damaged and not best_effort:
            raise CorruptFrameError(
                "compressed data region is damaged", path=self.path
            )
        return self._region, head, len(self._region)

    def data_bounds(self):
        if not self.valid:
            return 0, 0
        if self.sealed:
            return self.footer["data_start"], self.footer["data_end"]
        if self.compressed:
            __, start, end = self.frame_region(best_effort=True)
            return start, end
        return sformat.SEGMENT_HEADER_BYTES, len(self.data)

    def data_bytes(self):
        start, end = self.data_bounds()
        return end - start

    def stored_data_bytes(self):
        """On-disk size of the data region (inspect: what compression
        actually saved; equals :meth:`data_bytes` when uncompressed)."""
        if self.compressed and self.sealed:
            return self.footer["stored_bytes"]
        if self.compressed:
            return max(len(self.data) - sformat.SEGMENT_HEADER_BYTES, 0)
        return self.data_bytes()

    def iter_frames(self):
        """Strict frame walk: raises CorruptFrameError on damage."""
        if not self.valid:
            return iter(())
        data, start, end = self.frame_region()
        return sformat.iter_frames(
            data, start, end,
            version=self.version, sealed=self.sealed, path=self.path,
        )

    def salvage_frames(self):
        """Damage-tolerant walk: ("frame", offset, mask, payload) /
        ("gap", start, end) / ("torn", start, end) items."""
        if not self.valid:
            return iter(())
        data, start, end = self.frame_region(best_effort=True)
        return sformat.salvage_frames(
            data, start, end, version=self.version
        )

    def committed_frames(self):
        """Frames whose batch the writing filter actually committed.

        Sealed segments seal on a batch boundary, so every frame
        counts.  An unsealed tail that contains batch markers may end
        with frames of a batch whose trailing marker never reached the
        medium (the filter died mid-commit); those frames are
        uncommitted -- a relaunched filter re-appends the whole batch
        in a later segment, so reading them would double-count.
        Marker-free unsealed segments (packed stores, markerless
        senders) are taken whole.
        """
        if self.sealed:
            return self.iter_frames()
        return iter(_commit_truncate(list(self.iter_frames())))

    def committed_salvage(self):
        """The salvage-mode analogue of :meth:`committed_frames`:
        returns (frames, gaps) where gaps is a list of quarantined
        (start, end) byte ranges.  Torn-tail items are expected loss
        and are not treated as gaps."""
        frames, gaps = [], []
        for item in self.salvage_frames():
            if item[0] == "frame":
                frames.append(item[1:])
            elif item[0] == "gap":
                gaps.append((item[1], item[2]))
        if not self.sealed:
            frames = _commit_truncate(frames)
        return frames, gaps

    def verify(self):
        """Classify this segment's integrity without decoding records.

        Returns a dict: ``status`` (one of the class constants above),
        ``version``, ``sealed``, ``frames``/``markers`` verified,
        ``committed_bytes``, ``torn_bytes`` (clean torn tail),
        ``quarantined_bytes`` (unverifiable, non-tail), and ``error``
        (header error text, when status is bad-header/foreign).
        """
        report = {
            "path": self.path,
            "status": SEALED_CLEAN,
            "version": self.version,
            "sealed": self.sealed,
            "compressed": self.compressed,
            "frames": 0,
            "markers": 0,
            "committed_bytes": 0,
            "torn_bytes": 0,
            "quarantined_bytes": 0,
            "error": None,
        }
        if not self.valid:
            report["status"] = (
                FOREIGN if self.header_error.foreign else BAD_HEADER
            )
            report["error"] = str(self.header_error)
            report["quarantined_bytes"] = len(self.data)
            return report
        for item in self.salvage_frames():
            if item[0] == "frame":
                payload = item[3]
                report["frames"] += 1
                if is_batch_marker(payload):
                    report["markers"] += 1
                report["committed_bytes"] += (
                    len(payload) + sformat.frame_overhead(self.version)
                )
            elif item[0] == "torn":
                report["torn_bytes"] += item[2] - item[1]
            else:
                report["quarantined_bytes"] += item[2] - item[1]
        if report["quarantined_bytes"]:
            report["status"] = CORRUPT_FRAME
        elif report["torn_bytes"]:
            report["status"] = TORN_TAIL
        elif not self.sealed:
            report["status"] = OPEN_CLEAN
        return report

    def host_names(self):
        if not self.sealed:
            return {}
        return {
            int(host_id): name
            for host_id, name in self.footer.get("hosts", {}).items()
        }


def _commit_truncate(frames):
    """Drop unsealed-tail frames after the last batch marker (see
    :meth:`Segment.committed_frames`); marker-free lists pass whole."""
    last_marker = None
    for index, entry in enumerate(frames):
        payload = entry[2]
        if is_batch_marker(payload):
            last_marker = index
    if last_marker is None:
        return frames
    return frames[: last_marker + 1]


class ScanStats:
    """What one scan actually touched (the pushdown evidence), plus the
    loss ledger: everything a scan could not verify is counted here,
    never silently dropped."""

    def __init__(self):
        self.segments_total = 0
        self.segments_scanned = 0
        self.segments_skipped = 0
        self.segments_recovered = 0
        #: Segments whose header failed to parse (skipped, not fatal).
        self.segments_bad_header = 0
        self.bytes_scanned = 0
        self.records_decoded = 0
        self.records_yielded = 0
        #: Records rejected by the batch fast lane's columnar rule
        #: pre-screen without ever being materialized as dicts (always
        #: 0 on the interpreted scan; counted toward records_yielded,
        #: since the oracle yields them and the rules reject them).
        self.records_prescreened = 0
        #: Corrupt frames / quarantined byte ranges survived in salvage
        #: mode (strict mode raises instead of counting).
        self.frames_corrupt = 0
        self.bytes_quarantined = 0
        #: Records recovered from segments that contained damage.
        self.records_salvaged = 0
        #: (path, reason) for every segment-level problem encountered.
        self.segment_errors = []

    def loss_free(self):
        """True when nothing was quarantined or skipped as damaged."""
        return (
            self.segments_bad_header == 0
            and self.frames_corrupt == 0
            and self.bytes_quarantined == 0
        )

    def __repr__(self):
        text = (
            "ScanStats(scanned={0}/{1}, skipped={2}, recovered={3}, "
            "bytes={4}, decoded={5}, yielded={6}".format(
                self.segments_scanned,
                self.segments_total,
                self.segments_skipped,
                self.segments_recovered,
                self.bytes_scanned,
                self.records_decoded,
                self.records_yielded,
            )
        )
        if not self.loss_free():
            text += (
                ", bad_header={0}, corrupt_frames={1}, quarantined={2}B, "
                "salvaged={3}".format(
                    self.segments_bad_header,
                    self.frames_corrupt,
                    self.bytes_quarantined,
                    self.records_salvaged,
                )
            )
        return text + ")"


class StoreReader:
    """Read one store (one filter's segment family)."""

    def __init__(self, segments, host_names=None):
        self.segments = sorted(segments, key=lambda seg: seg.path)
        names = {}
        for segment in self.segments:
            names.update(segment.host_names())
        names.update(host_names or {})
        self.codec = MessageCodec(names)
        #: Stats of the most recent scan (updated as the scan advances).
        self.last_stats = ScanStats()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_bytes(cls, mapping, host_names=None):
        """From a dict path -> segment bytes."""
        return cls(
            [Segment(path, data) for path, data in mapping.items()],
            host_names=host_names,
        )

    @classmethod
    def from_fs(cls, fs, base, host_names=None):
        """From a simulated machine filesystem, host-side.  Segment
        buffers are referenced, not copied: construction parses only
        headers and footers, and a segment's bytes are snapshotted the
        first time a scan actually touches it -- a pushdown query over
        a large store materializes only the segments it reads.  A
        segment with a damaged header is kept (flagged invalid) so the
        rest of the store stays readable."""
        prefix = base + SEGMENT_SUFFIX
        segments = [
            Segment(path, fs.node(path).data)
            for path in fs.paths()
            if path.startswith(prefix)
        ]
        if not segments:
            raise FileNotFoundError(prefix + "*")
        return cls(segments, host_names=host_names)

    @classmethod
    def from_files(cls, base, host_names=None):
        """From real files (the CLI): ``<base>.seg*`` siblings, memory-
        mapped read-only so the OS pages frames in on demand -- a
        pushdown-skipped segment costs its header and footer pages,
        nothing else, and no segment is ever held in memory whole.  A
        damaged or foreign file among them is kept (flagged invalid)
        instead of aborting the whole store."""
        import glob
        import mmap

        paths = sorted(glob.glob(base + SEGMENT_SUFFIX + "*"))
        if not paths:
            raise FileNotFoundError(base + SEGMENT_SUFFIX + "*")
        segments = []
        for path in paths:
            with open(path, "rb") as handle:
                try:
                    data = mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ)
                except (ValueError, OSError):
                    data = handle.read()  # empty file: nothing to map
            segments.append(Segment(path, data))
        return cls(segments, host_names=host_names)

    # -- scanning -------------------------------------------------------

    def footers(self):
        """(path, footer-or-None) per segment, for inspect."""
        return [(segment.path, segment.footer) for segment in self.segments]

    def integrity(self):
        """Per-segment :meth:`Segment.verify` reports (inspect/fsck)."""
        return [segment.verify() for segment in self.segments]

    def record_count(self):
        """Total records, from footers where sealed, scans otherwise."""
        total = 0
        for segment in self.segments:
            if not segment.valid:
                continue
            if segment.sealed:
                total += segment.footer["records"]
            else:
                total += sum(
                    1
                    for __, __mask, payload in segment.committed_frames()
                    if not is_batch_marker(payload)
                )
        return total

    def scan(self, machines=None, pids=None, events=None, t_min=None,
             t_max=None, salvage=False):
        """Stream matching records as decoded dicts (the exact shape
        ``parse_trace`` yields from a text log).

        Pushdown: a sealed segment whose footer proves no record can
        match is skipped without touching its data region; only its
        footer/trailer bytes are read.  The residual predicate is then
        applied per record, and masked (discarded) fields are dropped.

        Integrity: strict by default -- a corrupt frame raises
        :class:`CorruptSegmentError` rather than yielding a record
        stream that silently differs from what was written.  With
        ``salvage=True`` the scan skips to the next verifiable frame,
        quarantines the damaged range, and accounts the loss in
        :attr:`last_stats` (``bytes_quarantined``, ``frames_corrupt``).
        Segments with unreadable headers are skipped and counted in
        either mode.
        """
        stats = self.last_stats = ScanStats()
        stats.segments_total = len(self.segments)
        machine_set = set(machines) if machines is not None else None
        pid_set = set(pids) if pids is not None else None
        event_set = set(events) if events is not None else None
        for segment in self.segments:
            if not segment.valid:
                stats.segments_bad_header += 1
                stats.segment_errors.append(
                    (segment.path, str(segment.header_error))
                )
                continue
            if segment.sealed:
                if not sformat.footer_matches(
                    segment.footer,
                    machines=machine_set,
                    pids=pid_set,
                    events=event_set,
                    t_min=t_min,
                    t_max=t_max,
                ):
                    stats.segments_skipped += 1
                    continue
            else:
                stats.segments_recovered += 1
            stats.segments_scanned += 1
            stats.bytes_scanned += segment.data_bytes()
            yield from self._segment_records(
                segment, stats, machine_set, pid_set, event_set,
                t_min, t_max, salvage,
            )

    def _segment_records(self, segment, stats, machine_set, pid_set,
                         event_set, t_min, t_max, salvage):
        """Decode one segment's committed frames through the residual
        predicate (the per-segment body of :meth:`scan`, shared with
        the batch fast lane's slow path so both walk damage and apply
        predicates with byte-identical semantics)."""
        if salvage:
            frames, gaps = segment.committed_salvage()
            for start, end in gaps:
                stats.frames_corrupt += 1
                stats.bytes_quarantined += end - start
            if gaps:
                stats.segment_errors.append(
                    (
                        segment.path,
                        "quarantined {0} byte(s) in {1} range(s)".format(
                            sum(end - start for start, end in gaps),
                            len(gaps),
                        ),
                    )
                )
            damaged = bool(gaps)
        else:
            frames = segment.committed_frames()
            damaged = False
        for __, mask, payload in frames:
            if is_batch_marker(payload):
                continue  # delivery-protocol control frame
            try:
                record = self.codec.decode(payload)
            except ValueError as err:
                # A frame that parses but whose payload is not a
                # meter message.  v2 frames are CRC-verified, so
                # this is real damage; v1 has no frame checksum to
                # consult.  Either way the loss is accounted (or,
                # strict, surfaced) -- never silently dropped.
                if salvage or segment.version == sformat.FORMAT_VERSION_V1:
                    stats.frames_corrupt += 1
                    stats.bytes_quarantined += len(payload) + (
                        sformat.frame_overhead(segment.version)
                    )
                    stats.segment_errors.append(
                        (segment.path, "undecodable frame: %s" % err)
                    )
                    damaged = True
                    continue
                raise CorruptSegmentError(
                    "undecodable frame payload: %s" % err,
                    path=segment.path,
                )
            stats.records_decoded += 1
            if damaged:
                stats.records_salvaged += 1
            if event_set is not None and record["event"] not in event_set:
                continue
            if machine_set is not None and record["machine"] not in machine_set:
                continue
            if pid_set is not None:
                if (record["machine"], record.get("pid")) not in pid_set:
                    continue
            time = record["cpuTime"]
            if t_min is not None and time < t_min:
                continue
            if t_max is not None and time > t_max:
                continue
            if mask:
                for name in sformat.masked_fields(record["event"], mask):
                    record.pop(name, None)
            stats.records_yielded += 1
            yield record

    def records(self, **predicates):
        """Materialize a scan (convenience for small selections)."""
        return list(self.scan(**predicates))


def merge_scan(readers, **predicates):
    """K-way merge of several stores' scans by (cpuTime, machine).

    Each store's stream is consumed lazily; ordering across machines is
    the same local-clock heuristic as :meth:`Trace.merge` (Section 4.1:
    causal questions belong to happens-before, not to this order).
    """
    streams = [reader.scan(**predicates) for reader in readers]
    return heapq.merge(
        *streams,
        key=lambda record: (record.get("cpuTime", 0), record.get("machine", 0))
    )
