"""Filter relaunch must extend, not erase, the existing log.

The filter used to open its log with mode "w"; a filter recreated
after a crash or daemon restart therefore truncated every record the
first incarnation had saved.  Append mode keeps them.
"""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs


def _talker(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", 6100))
    for i in range(4):
        yield sys.sendto(fd, b"x" * 64, ("green", 6101))
    yield sys.exit(0)


def _run_job(session, jobname):
    session.command("newjob {0}".format(jobname))
    session.command("addprocess {0} red talker".format(jobname))
    session.command("setflags {0} send socket termproc".format(jobname))
    session.command("startjob {0}".format(jobname))
    session.settle()


def test_filter_relaunch_appends_to_existing_log():
    cluster = Cluster(seed=33)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("talker", _talker)
    session.command("filter f1 blue")
    _run_job(session, "j1")
    first = session.read_trace("f1")
    assert first

    # The filter dies (a fault plan kills it, as a daemon restart
    # would); the controller hears about it and lets us recreate it
    # under the same name -- and the same log path.
    plan = FaultPlan().kill_process(cluster.sim.now + 5.0, "blue", "filter")
    FaultInjector(cluster, plan).arm()
    session.settle(ms=200.0)
    assert "f1" not in session.command("filter")  # gone from the controller

    session.command("filter f1 blue")
    _run_job(session, "j2")
    combined = session.read_trace("f1")
    assert combined[: len(first)] == first  # nothing truncated
    assert len(combined) == 2 * len(first)
