"""Socket names.

The paper's meter messages carry ``NAME`` fields ("typedef struct
sockaddr NAME", Appendix A): 16-byte sockaddr-shaped blobs.  Section 4.1
says names are presented to the user as an Internet Domain name, a UNIX
path name, or (for socketpairs) an internally generated unique name.

We keep three name families with both a *wire* form (16 bytes, to honour
the Appendix-A struct layouts byte-for-byte) and a *display* form (the
string the filter logs and the analysis programs read).
"""

import struct

#: Address families, numbered as in 4.2BSD <sys/socket.h>.
AF_UNIX = 1
AF_INET = 2
#: Not a real BSD family: marks the internally generated socketpair names.
AF_PAIR = 99

_NAME_WIRE_BYTES = 16


class SocketName:
    """Base class for the three name families."""

    family = None

    def wire_bytes(self):
        """16-byte sockaddr-shaped encoding (Appendix A NAME field)."""
        raise NotImplementedError

    def wire_len(self):
        """Meaningful byte count, reported in *NameLen message fields."""
        raise NotImplementedError

    def display(self):
        """Human-readable form logged by filters (Section 4.1)."""
        raise NotImplementedError

    def __repr__(self):
        return "{0}({1!r})".format(type(self).__name__, self.display())

    def __eq__(self, other):
        return (
            isinstance(other, SocketName)
            and self.family == other.family
            and self.display() == other.display()
        )

    def __hash__(self):
        return hash((self.family, self.display()))


class InternetName(SocketName):
    """An Internet-domain name: (literal host name, port).

    Per Section 3.5.4 the host part is the literal name; the wire form
    carries a 4-byte host id assigned by the cluster's host table (our
    stand-in for an IP address on whichever network the receiver uses).
    """

    family = AF_INET

    def __init__(self, host, port, host_id=0):
        self.host = str(host)
        self.port = int(port)
        self.host_id = int(host_id)

    def wire_bytes(self):
        return struct.pack(">hHi8x", self.family, self.port, self.host_id)

    def wire_len(self):
        return 8

    def display(self):
        return "inet:{0}:{1}".format(self.host, self.port)


class UnixName(SocketName):
    """A UNIX-domain name: a path, truncated to 14 bytes on the wire
    exactly as ``sun_path`` is in a 16-byte sockaddr."""

    family = AF_UNIX

    def __init__(self, path):
        self.path = str(path)

    def wire_bytes(self):
        raw = self.path.encode("ascii", "replace")[:14]
        return struct.pack(">h14s", self.family, raw)

    def wire_len(self):
        return 2 + min(len(self.path), 14)

    def display(self):
        return "unix:{0}".format(self.path)


class PairName(SocketName):
    """The internally generated unique name given to socketpair ends."""

    family = AF_PAIR

    def __init__(self, unique_id):
        self.unique_id = int(unique_id)

    def wire_bytes(self):
        return struct.pack(">hi10x", self.family, self.unique_id)

    def wire_len(self):
        return 6

    def display(self):
        return "pair:{0}".format(self.unique_id)


#: A zero name: used when a message field's name is unavailable, e.g. a
#: write over an established connection where "the name of the recipient
#: is not available to the metering software" (Section 4.1).
NO_NAME = struct.pack(">16x")


def decode_name(raw, host_names=None):
    """Decode a 16-byte wire NAME back into a :class:`SocketName`.

    ``host_names`` maps host id -> literal host name; without it Internet
    names display the numeric id.  Returns None for an all-zero NAME.
    """
    if len(raw) != _NAME_WIRE_BYTES:
        raise ValueError("NAME field must be 16 bytes, got %d" % len(raw))
    if raw == NO_NAME:
        return None
    (family,) = struct.unpack(">h", raw[:2])
    if family == AF_INET:
        __, port, host_id = struct.unpack(">hHi", raw[:8])
        host = (host_names or {}).get(host_id, str(host_id))
        return InternetName(host, port, host_id)
    if family == AF_UNIX:
        __, path = struct.unpack(">h14s", raw)
        return UnixName(path.rstrip(b"\x00").decode("ascii", "replace"))
    if family == AF_PAIR:
        __, unique_id = struct.unpack(">hi", raw[:6])
        return PairName(unique_id)
    raise ValueError("unknown address family %d" % family)


def parse_name(text):
    """Parse a display-form name ("inet:host:port", ...) back to an object.

    The analysis programs use this when reading filter log files.
    """
    if not text or text == "-":
        return None
    kind, __, rest = text.partition(":")
    if kind == "inet":
        host, __, port = rest.rpartition(":")
        return InternetName(host, int(port))
    if kind == "unix":
        return UnixName(rest)
    if kind == "pair":
        return PairName(int(rest))
    raise ValueError("unparseable socket name %r" % text)
