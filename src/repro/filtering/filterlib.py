"""Support library for writing filter processes.

"Given one basic constraint, a user can write a custom filter.  This
one constraint is that a filter process must listen to its standard
input in order to receive meter messages from the kernel meter."
(Section 3.4.)

Here, descriptor 0 of a filter process is a *listening* meter socket
set up by the meterdaemon; the meters of every machine metering for
this filter connect to it.  :class:`MeterInbox` owns the accept loop
and the message framing, handing complete raw meter messages to the
filter body.
"""

from repro.kernel.errno import SyscallError
from repro.metering.messages import (
    HEADER_BYTES,
    STREAM_QUERY_TYPE,
    peek_size,
    peek_trace_type,
)

#: Any framed size outside these bounds means the connection is not
#: speaking the meter protocol at all; it is closed, not parsed.
MAX_METER_MESSAGE = 4096


def build_record_screen(rules, descriptions, host_names=None):
    """A raw-message pre-screen for the live filter loop, or None.

    When the filter's descriptions are exactly the Appendix-A layouts
    (the shipped default), the rule set compiles to a columnar screen
    that rejects most unselectable messages straight off the wire --
    no record dict and, when ``host_names`` is the same host table the
    records will be decoded with, no NAME decoding either (NAME
    conditions compare display strings read straight out of the wire
    bytes; without the table they fall back to the full decode path).
    The screen only ever *definitively rejects*: any message it cannot
    prove unselectable passes through to the full decode +
    ``rules.apply`` path, so the filter's output is bit-identical with
    or without it.  Filters running edited descriptions (a changed
    protocol) get None and keep the plain path.
    """
    from repro.filtering.descriptions import matches_appendix_a
    from repro.tracestore.batchscan import message_screen

    if descriptions is None or not matches_appendix_a(descriptions):
        return None
    return message_screen(rules, host_names)

#: Bytes requested per read: large enough to drain a whole shipped
#: batch train in one syscall, so framing cost is paid per read, not
#: per message.
READ_SIZE = 65536


class MeterInbox:
    """Accept meter connections on fd 0 and reassemble meter messages.

    Usage inside a filter guest::

        inbox = MeterInbox()
        while True:
            raw_messages = yield from inbox.wait(sys)
            for raw in raw_messages:
                ...
    """

    def __init__(self, listen_fd=0, recovered_seqs=None):
        self.listen_fd = listen_fd
        #: conn fd -> reassembly buffer
        self.buffers = {}
        self.connections_accepted = 0
        self.messages_received = 0
        #: Child events from the most recent :meth:`wait`; defined (and
        #: empty) before the first wait so callers may always read it.
        self.last_child_events = []
        #: (machine, pid) -> highest accepted batch sequence number;
        #: seeded from a recovered log so a relaunched filter rejects
        #: retransmissions of batches already committed by an earlier
        #: incarnation.
        self.last_seq = dict(recovered_seqs or {})
        self.batches_accepted = 0
        self.batches_deduped = 0
        #: (fd, raw frame) of live-analysis query messages (traceType
        #: STREAM_QUERY_TYPE), diverted out of the record path.  A
        #: connection is classified by its *first* complete message --
        #: meters never send queries, queriers never send records -- so
        #: the per-message framing loop stays check-free.
        self.pending_queries = []
        self._query_fds = set()
        self._unclassified = set()

    def accept_batch(self, machine, pid, seq):
        """At-least-once delivery -> exactly-once acceptance.

        The kernel meter trails every flushed batch with a sequence
        marker and retransmits its resend window after a reconnect;
        calling this at each marker tells the filter whether the batch
        is new (True, and now remembered) or a duplicate to discard.
        """
        key = (machine, pid)
        last = self.last_seq.get(key)
        if last is not None and seq <= last:
            self.batches_deduped += 1
            return False
        self.last_seq[key] = seq
        self.batches_accepted += 1
        return True

    def take_queries(self):
        """Drain diverted query frames: [(conn fd, raw frame), ...].
        The caller answers on the same fd (see repro.streaming)."""
        queries = self.pending_queries
        self.pending_queries = []
        return queries

    def fds(self):
        return [self.listen_fd] + list(self.buffers)

    def wait(self, sys, timeout_ms=None, want_children=False):
        """Block until meter messages arrive; returns a list of raw
        messages (possibly empty on timeout or child events).

        As a sub-generator, also returns child events through
        ``self.last_child_events`` when ``want_children`` is set.
        """
        ready, child_events = yield sys.select(
            self.fds(), timeout_ms=timeout_ms, want_children=want_children
        )
        self.last_child_events = child_events
        raw_messages = []
        for fd in ready:
            if fd == self.listen_fd:
                conn, __ = yield sys.accept(self.listen_fd)
                self.buffers[conn] = b""
                self._unclassified.add(conn)
                self.connections_accepted += 1
                continue
            try:
                data = yield sys.read(fd, READ_SIZE)
            except SyscallError:
                # Connection reset: the metered machine crashed or the
                # path was severed.  The stream is gone; records already
                # logged stay logged, the filter itself must survive.
                data = b""
            if not data:
                yield sys.close(fd)
                self._drop(fd)
                continue
            corrupt = self._feed(fd, data, raw_messages)
            if corrupt:
                # Not the meter protocol: drop the connection rather
                # than loop over garbage framing.
                yield sys.close(fd)
                self._drop(fd)
        self.messages_received += len(raw_messages)
        return raw_messages

    def _drop(self, fd):
        del self.buffers[fd]
        self._query_fds.discard(fd)
        self._unclassified.discard(fd)

    def _feed(self, fd, data, raw_messages):
        """Frame newly read bytes, appending complete messages to
        ``raw_messages``.  Returns True if the stream is corrupt.

        One concatenation joins any partial message left from the
        previous read; after that a cursor indexes into the buffer, so
        a read full of messages costs one slice per message plus one
        tail copy, instead of a shrinking-``bytes`` reslice (slice of
        the head *and* slice of the tail) per message.
        """
        leftover = self.buffers[fd]
        if leftover:
            data = leftover + data
        if fd in self._query_fds:
            return self._feed_queries(fd, data)
        if fd in self._unclassified:
            if len(data) < HEADER_BYTES:
                self.buffers[fd] = data
                return False
            self._unclassified.discard(fd)
            if peek_trace_type(data) == STREAM_QUERY_TYPE:
                self._query_fds.add(fd)
                return self._feed_queries(fd, data)
        end = len(data)
        offset = 0
        while True:
            size = peek_size(data, offset)
            if size is None:
                break
            if size < HEADER_BYTES or size > MAX_METER_MESSAGE:
                return True
            if end - offset < size:
                break
            if offset == 0 and size == end:
                # The read is exactly one message: pass it through.
                raw_messages.append(data)
                offset = end
                break
            raw_messages.append(data[offset : offset + size])
            offset += size
        if offset == end:
            self.buffers[fd] = b""
        elif offset:
            self.buffers[fd] = data[offset:]
        else:
            self.buffers[fd] = data
        return False

    def _feed_queries(self, fd, data):
        """Framing for a query connection: same size-delimited frames,
        routed to :attr:`pending_queries` instead of the record path."""
        end = len(data)
        offset = 0
        while True:
            size = peek_size(data, offset)
            if size is None:
                break
            if size < HEADER_BYTES or size > MAX_METER_MESSAGE:
                return True
            if end - offset < size:
                break
            self.pending_queries.append((fd, data[offset : offset + size]))
            offset += size
        self.buffers[fd] = data[offset:] if offset != end else b""
        return False
