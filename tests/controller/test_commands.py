"""The controller's command interpreter (Section 4.3), command by
command, against a live measurement system."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs


def _quick(sys, argv):
    yield sys.compute(5)
    yield sys.exit(0)


def _forever(sys, argv):
    while True:
        yield sys.sleep(50)


def _chatty(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    for __ in range(int(argv[0]) if argv else 3):
        yield sys.sendto(fd, b"m", ("green", 6000))
        yield sys.sleep(10)
    yield sys.exit(0)


@pytest.fixture
def session():
    cluster = Cluster(seed=17)
    sess = MeasurementSession(cluster, control_machine="yellow")
    sess.install_program("quick", _quick)
    sess.install_program("forever", _forever)
    sess.install_program("chatty", _chatty)
    return sess


def test_help_lists_all_commands_and_flags(session):
    out = session.command("help")
    for command in (
        "filter", "newjob", "addprocess", "acquire", "setflags", "startjob",
        "stopjob", "removejob", "removeprocess", "jobs", "getlog", "source",
        "sink", "die",
    ):
        assert command in out
    for flag in ("send", "receivecall", "destsocket", "termproc"):
        assert flag in out


def test_unknown_command_reports(session):
    out = session.command("frobnicate")
    assert "unknown command" in out


def test_bad_parameter_characters_rejected(session):
    out = session.command("newjob bad!name")
    assert "bad parameter" in out


def test_filter_create_and_list(session):
    out = session.command("filter f1 blue")
    assert "filter 'f1' ... created: identifier =" in out
    out = session.command("filter")
    assert "'f1'" in out and "blue" in out


def test_filter_duplicate_name_rejected(session):
    session.command("filter f1 blue")
    out = session.command("filter f1 red")
    assert "already exists" in out


def test_filter_defaults_to_local_machine(session):
    session.command("filter f1")
    out = session.command("filter")
    assert "yellow" in out  # the controller's machine


def test_filter_with_missing_filterfile_fails(session):
    out = session.command("filter f1 blue nosuchfilter")
    assert "not created" in out


def test_newjob_requires_a_filter(session):
    out = session.command("newjob foo")
    assert "cannot be created" in out


def test_newjob_uses_default_filter(session):
    session.command("filter f1 blue")
    out = session.command("newjob foo")
    assert out == ""  # silent success, as in Appendix B
    out = session.command("jobs")
    assert "foo" in out and "f1" in out


def test_newjob_duplicate_rejected(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    out = session.command("newjob foo")
    assert "already exists" in out


def test_newjob_unknown_filter_rejected(session):
    session.command("filter f1 blue")
    out = session.command("newjob foo nosuch")
    assert "no filter" in out


def test_addprocess_creates_suspended_process(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    out = session.command("addprocess foo red quick")
    assert "process 'quick' ... created: identifier =" in out
    jobs = session.command("jobs foo")
    assert "new" in jobs
    # It does not run until startjob.
    session.settle(200)
    assert "new" in session.command("jobs foo")


def test_addprocess_copies_missing_executable(session):
    """Section 3.5.3: the controller rcp's the file if it is only
    present locally."""
    cluster = session.cluster
    # Install "special" only on the controller machine.
    cluster.registry.register("special", _quick)
    cluster.machine("yellow").fs.install(
        "special", data="special", mode=0o755, program="special"
    )
    session.command("filter f1 blue")
    session.command("newjob foo")
    out = session.command("addprocess foo red special")
    assert "created" in out
    assert cluster.machine("red").fs.exists("special")


def test_addprocess_unknown_job(session):
    session.command("filter f1 blue")
    out = session.command("addprocess nojob red quick")
    assert "no job" in out


def test_addprocess_no_daemon_machine(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    out = session.command("addprocess foo mars quick")
    assert "not created" in out


def test_setflags_union_semantics(session):
    """"If two setflags commands are executed, the set of active flags
    is the union of the two groups"."""
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red quick")
    out = session.command("setflags foo send receive")
    assert "new job flags = send receive" in out
    assert "Process 'quick' : Flags set" in out
    out = session.command("setflags foo fork")
    assert "new job flags = send receive fork" in out


def test_setflags_explicit_reset(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("setflags foo send receive")
    out = session.command("setflags foo -send")
    assert "new job flags = receive" in out


def test_setflags_unknown_flag(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    out = session.command("setflags foo sendd")
    assert "unknown meter flag" in out


def test_startjob_runs_processes_and_reports(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red quick")
    out = session.command("startjob foo")
    assert "'quick' started." in out
    session.settle()
    out = session.drain_output()
    assert "DONE: process quick in job 'foo' terminated: reason: normal" in out


def test_startjob_refuses_killed_and_running(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red forever")
    session.command("startjob foo")
    out = session.command("startjob foo")
    assert "cannot be started" in out and "running" in out


def test_stopjob_and_restart(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red forever")
    session.command("startjob foo")
    out = session.command("stopjob foo")
    assert "'forever' stopped." in out
    assert "stopped" in session.command("jobs foo")
    out = session.command("startjob foo")
    assert "'forever' started." in out


def test_stopjob_moves_new_to_stopped(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red quick")
    session.command("stopjob foo")
    assert "stopped" in session.command("jobs foo")


def test_removejob_refuses_while_running(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red forever")
    session.command("startjob foo")
    out = session.command("removejob foo")
    assert "not removed" in out
    assert "foo" in session.command("jobs")


def test_removejob_kills_stopped_processes(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red forever")
    session.command("startjob foo")
    session.command("stopjob foo")
    out = session.command("removejob foo")
    assert "'forever' removed" in out
    assert "no jobs" in session.command("jobs")


def test_removejob_after_completion(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red quick")
    session.command("startjob foo")
    session.settle()
    out = session.command("rmjob foo")  # alias from Appendix B
    assert "'quick' removed" in out


def test_removeprocess_single(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red quick")
    session.command("addprocess foo green forever")
    session.command("startjob foo")
    session.settle(100)
    out = session.command("removeprocess foo quick")
    assert "'quick' removed" in out
    out = session.command("removeprocess foo forever")
    assert "not removed" in out  # still running
    jobs = session.command("jobs foo")
    assert "quick" not in jobs


def test_jobs_listing_shows_number_name_filter(session):
    session.command("filter f1 blue")
    session.command("newjob alpha")
    session.command("newjob beta")
    out = session.command("jobs")
    assert "1: alpha (filter f1)" in out
    assert "2: beta (filter f1)" in out


def test_jobs_detail_shows_pid_state_machine_flags(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red quick")
    session.command("setflags foo send")
    out = session.command("jobs foo")
    assert "new" in out and "'quick'" in out and "red" in out and "send" in out


def test_getlog_copies_trace_to_destination(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red chatty")
    session.command("setflags foo send")
    session.command("startjob foo")
    session.settle()
    out = session.command("getlog f1 mytrace")
    assert out == ""
    content = session.read_controller_file("mytrace")
    assert "event=send" in content


def test_getlog_unknown_filter(session):
    out = session.command("getlog nosuch dest")
    assert "no filter" in out


def test_source_runs_scripts(session):
    script = "filter f1 blue\nnewjob foo\naddprocess foo red quick\n"
    session.cluster.machine("yellow").fs.install(
        "myscript", script, owner=session.uid, mode=0o644
    )
    out = session.command("source myscript")
    assert "filter 'f1' ... created" in out
    assert "process 'quick' ... created" in out


def test_source_missing_file(session):
    out = session.command("source nosuchscript")
    assert "cannot source" in out


def test_source_nesting_depth_limited(session):
    """"Source commands may be nested within scripts to a maximum depth
    of sixteen"."""
    machine = session.cluster.machine("yellow")
    # Script i sources script i+1.
    for i in range(20):
        machine.fs.install(
            "s%d" % i, "source s%d\n" % (i + 1), owner=session.uid, mode=0o644
        )
    machine.fs.install("s20", "help\n", owner=session.uid, mode=0o644)
    out = session.command("source s0")
    assert "too deep" in out


def test_sink_redirects_output_to_file(session):
    session.command("filter f1 blue")
    session.command("sink captured")
    out = session.command("jobs")
    assert out == ""  # nothing on the terminal
    session.command("sink")  # back to the terminal
    content = session.read_controller_file("captured")
    assert "no jobs" in content


def test_die_warns_with_active_processes_then_exits_on_repeat(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red forever")
    session.command("startjob foo")
    out = session.command("die")
    assert "active processes" in out
    assert session.controller_alive()
    session.command("die")
    session.settle(50)
    assert not session.controller_alive()


def test_die_warning_resets_after_other_commands(session):
    session.command("filter f1 blue")
    session.command("newjob foo")
    session.command("addprocess foo red forever")
    session.command("startjob foo")
    session.command("die")
    session.command("jobs")  # any command resets the warning
    out = session.command("die")
    assert "active processes" in out
    assert session.controller_alive()


def test_die_removes_filter_processes(session):
    session.command("filter f1 blue")
    pid_line = session.command("filter")
    session.command("bye")  # alias
    session.settle(100)
    blue = session.cluster.machine("blue")
    filters = [
        p for p in blue.procs.values()
        if p.program_name == "filter" and p.state != defs.PROC_ZOMBIE
    ]
    assert filters == []
    del pid_line


def test_acquire_and_refuse_to_start_stop(session):
    target = session.cluster.spawn(
        "red", _forever, uid=session.uid, program_name="server"
    )
    session.settle(20)
    session.command("filter f1 blue")
    session.command("newjob watch")
    out = session.command("acquire watch red {0}".format(target.pid))
    assert "acquired" in out
    out = session.command("startjob watch")
    assert "cannot be started" in out
    session.command("stopjob watch")
    assert target.state != defs.PROC_ZOMBIE
    assert "acquired" in session.command("jobs watch")


def test_acquire_foreign_process_denied(session):
    target = session.cluster.spawn(
        "red", _forever, uid=999, program_name="other"
    )
    session.settle(20)
    session.command("filter f1 blue")
    session.command("newjob watch")
    out = session.command("acquire watch red {0}".format(target.pid))
    assert "not acquired" in out


def test_removejob_unmeters_acquired_process(session):
    target = session.cluster.spawn(
        "red", _forever, uid=session.uid, program_name="server"
    )
    session.settle(20)
    session.command("filter f1 blue")
    session.command("newjob watch")
    session.command("setflags watch send")
    session.command("acquire watch red {0}".format(target.pid))
    assert target.meter_entry is not None
    out = session.command("removejob watch")
    assert "removed" in out
    session.settle(20)
    assert target.meter_entry is None
    assert target.state != defs.PROC_ZOMBIE
