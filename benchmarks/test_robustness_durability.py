"""Durability gate: exhaustive crashpoint and bit-flip sweeps.

The store's durability contract (DESIGN.md, on-disk integrity) is
checked by brute force over a small sealed v2 store:

- **Crashpoint sweep**: the store's byte stream is cut at *every* byte
  offset -- mid header, mid frame, mid footer, mid trailer -- standing
  for a crash at an arbitrary point of the write stream; additionally a
  :class:`FaultyWriter` tears the stream at every flush boundary.
  Every cut must salvage to an exact *prefix* of the clean records:
  records can be lost to the crash, never invented or altered.

- **Bit-flip sweep**: one bit is flipped at every byte offset of the
  sealed store.  Every flip must be *detected* (strict scan raises a
  typed StoreError, or the loss ledger is non-empty) or *harmless*
  (the record stream is byte-identical to the clean one).

``silent_wrong_records`` / ``silent_corruptions`` must both be zero --
that is the blocking acceptance criterion -- and the sweep metrics go
to BENCH_PR6.json at the repo root (uploaded by the CI ``durability``
job).
"""

import json
import time
from pathlib import Path

from benchmarks.conftest import HOSTS, synthetic_send_records
from repro.faults import FaultyWriter, StorageFaultPlan
from repro.metering.messages import MessageCodec
from repro.tracestore import (
    StoreError,
    StoreReader,
    StoreWriter,
    collect_ops,
)

BENCH_PATH = Path(__file__).resolve().parents[1] / "BENCH_PR6.json"

N_RECORDS = 30
SEGMENT_BYTES = 900  # several segments, a few KB total: sweepable


def _record_bench(key, value):
    data = {}
    if BENCH_PATH.exists():
        data = json.loads(BENCH_PATH.read_text())
    data[key] = value
    BENCH_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def _build_store():
    wire = synthetic_send_records(N_RECORDS)
    writer = StoreWriter(
        "/b/s.store", segment_bytes=SEGMENT_BYTES, host_names=HOSTS
    )
    for raw in wire:
        writer.append(raw)
    writer.close()
    sink = {}
    collect_ops(sink, writer)
    store = {path: bytes(data) for path, data in sink.items()}
    codec = MessageCodec(HOSTS)
    return store, [codec.decode(raw) for raw in wire]


def _truncate_stream(store, paths, cut):
    """The store as left by a crash after ``cut`` stream bytes."""
    damaged, consumed = {}, 0
    for path in paths:
        data = store[path]
        if consumed >= cut:
            break
        damaged[path] = data[: cut - consumed]
        consumed += len(data)
    return damaged


def test_crashpoint_sweep_every_byte_offset_salvages_to_a_prefix():
    store, baseline = _build_store()
    paths = sorted(store)
    total = sum(len(store[path]) for path in paths)
    t0 = time.perf_counter()
    silent_wrong = 0
    recovered_at = []
    for cut in range(total + 1):
        damaged = _truncate_stream(store, paths, cut)
        if not damaged:
            recovered_at.append(0)
            continue
        reader = StoreReader.from_bytes(damaged, host_names=HOSTS)
        records = reader.records(salvage=True)
        if records != baseline[: len(records)]:
            silent_wrong += 1
        recovered_at.append(len(records))
    assert silent_wrong == 0, (
        "{0} crashpoints produced non-prefix record streams".format(silent_wrong)
    )
    # Recovery is monotone in how much survived, and complete at the end.
    assert recovered_at[-1] == len(baseline)
    assert all(a <= b for a, b in zip(recovered_at, recovered_at[1:]))
    _record_bench(
        "crashpoint_sweep",
        {
            "store_bytes": total,
            "records": len(baseline),
            "crashpoints": total + 1,
            "silent_wrong_records": silent_wrong,
            "min_recovered": min(recovered_at),
            "wall_seconds": round(time.perf_counter() - t0, 3),
        },
    )


def test_torn_write_at_every_flush_boundary_salvages_to_a_prefix():
    wire = synthetic_send_records(N_RECORDS)
    codec = MessageCodec(HOSTS)
    baseline = [codec.decode(raw) for raw in wire]
    # Sweeping every byte via the writer seam would rebuild the store
    # per offset; flush boundaries are the seam-visible crash points.
    boundaries = sorted({0} | set(_flush_offsets(wire)))
    silent_wrong = 0
    for cut in boundaries:
        faulty = FaultyWriter(
            StoreWriter("/b/s.store", segment_bytes=SEGMENT_BYTES,
                        host_names=HOSTS, flush_bytes=1),
            StorageFaultPlan().torn_write(cut),
        )
        sink = {}
        for raw in wire:
            faulty.append(raw)
            collect_ops(sink, faulty)
        faulty.close()
        collect_ops(sink, faulty)
        store = {p: bytes(d) for p, d in sink.items() if d}
        if not store:
            continue
        reader = StoreReader.from_bytes(store, host_names=HOSTS)
        records = reader.records(salvage=True)
        if records != baseline[: len(records)]:
            silent_wrong += 1
    assert silent_wrong == 0
    _record_bench(
        "flush_boundary_tears",
        {"boundaries": len(boundaries), "silent_wrong_records": silent_wrong},
    )


def _flush_offsets(wire):
    """Cumulative intended-byte offsets after each write op."""
    faulty = FaultyWriter(
        StoreWriter("/b/s.store", segment_bytes=SEGMENT_BYTES,
                    host_names=HOSTS, flush_bytes=1),
        StorageFaultPlan(),
    )
    offsets = []
    for raw in wire:
        faulty.append(raw)
        collect_ops({}, faulty)
        offsets.append(faulty.bytes_intended)
    faulty.close()
    collect_ops({}, faulty)
    offsets.append(faulty.bytes_intended)
    return offsets


def test_bit_flip_sweep_every_byte_detected_or_harmless():
    store, baseline = _build_store()
    paths = sorted(store)
    t0 = time.perf_counter()
    outcomes = {"detected_strict": 0, "accounted_loss": 0, "harmless": 0}
    silent_corruptions = 0
    total = 0
    for path in paths:
        clean = store[path]
        for offset in range(len(clean)):
            total += 1
            damaged = dict(store)
            data = bytearray(clean)
            data[offset] ^= 1 << (offset % 8)  # deterministic bit choice
            damaged[path] = bytes(data)
            reader = StoreReader.from_bytes(damaged, host_names=HOSTS)
            try:
                records = reader.records()
            except StoreError:
                outcomes["detected_strict"] += 1
                continue
            if records == baseline:
                outcomes["harmless"] += 1
            elif not reader.last_stats.loss_free():
                outcomes["accounted_loss"] += 1
            else:
                silent_corruptions += 1
    assert silent_corruptions == 0, (
        "{0}/{1} flips silently changed the record stream".format(
            silent_corruptions, total
        )
    )
    detected = outcomes["detected_strict"] + outcomes["accounted_loss"]
    _record_bench(
        "bit_flip_sweep",
        {
            "flips": total,
            "silent_corruptions": silent_corruptions,
            "detected_strict": outcomes["detected_strict"],
            "accounted_loss": outcomes["accounted_loss"],
            "harmless_identical": outcomes["harmless"],
            "detection_or_harmless_rate": 1.0,
            "detected_rate": round(detected / total, 4),
            "wall_seconds": round(time.perf_counter() - t0, 3),
        },
    )
