"""FaultPlan construction and scheduling semantics."""

import pytest

from repro.core.cluster import Cluster
from repro.faults import FaultInjector, FaultPlan


def test_builder_chains_and_counts():
    plan = (
        FaultPlan()
        .crash(100.0, "red")
        .reboot(200.0, "red")
        .partition(50.0, [["red"], ["green"]])
        .heal(75.0)
        .loss_burst(10.0, duration_ms=20.0, loss=0.5)
        .latency_spike(10.0, duration_ms=20.0, extra_ms=5.0)
        .kill_process(30.0, "green", "worker")
        .kill_daemon(40.0, "green")
    )
    assert len(plan) == 8


def test_events_fire_in_time_order_not_declaration_order():
    plan = FaultPlan().crash(300.0, "red").heal(100.0).crash(200.0, "green")
    kinds = [event.kind for __, event in plan.sorted_events()]
    assert kinds == ["heal", "crash", "crash"]
    times = [event.at_ms for __, event in plan.sorted_events()]
    assert times == [100.0, 200.0, 300.0]


def test_simultaneous_events_keep_declaration_order():
    plan = FaultPlan().heal(50.0).crash(50.0, "red").heal(50.0)
    kinds = [event.kind for __, event in plan.sorted_events()]
    assert kinds == ["heal", "crash", "heal"]


def test_negative_time_rejected():
    with pytest.raises(ValueError):
        FaultPlan().crash(-1.0, "red")


def test_kill_daemon_is_a_meterdaemon_kill():
    plan = FaultPlan().kill_daemon(10.0, "blue")
    event = plan.events[0]
    assert event.kind == "kill_process"
    assert event.args == {"machine": "blue", "program": "meterdaemon"}


def test_describe_lists_schedule():
    plan = FaultPlan().crash(120.0, "red").heal(130.0)
    lines = plan.describe()
    assert len(lines) == 2
    assert "crash" in lines[0] and "machine=red" in lines[0]
    assert "heal" in lines[1]


def test_unknown_machine_name_rejected_at_arm_time():
    cluster = Cluster(seed=1)
    injector = FaultInjector(cluster, FaultPlan().crash(5.0, "mauve"))
    with pytest.raises(ValueError, match="unknown machine 'mauve'"):
        injector.arm()
    assert not injector.armed  # still re-armable after fixing the plan


def test_unknown_machine_in_partition_group_rejected_at_arm_time():
    cluster = Cluster(seed=1)
    plan = FaultPlan().partition(5.0, [["red", "mauve"], ["green"]])
    with pytest.raises(ValueError, match="unknown machine 'mauve'"):
        FaultInjector(cluster, plan).arm()


def test_injector_arm_is_once_only():
    cluster = Cluster(seed=1)
    injector = FaultInjector(cluster, FaultPlan().heal(10.0))
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()


def test_faults_fire_at_their_scheduled_times():
    cluster = Cluster(seed=1)
    plan = FaultPlan().crash(50.0, "red").reboot(120.0, "red")
    injector = FaultInjector(cluster, plan).arm()
    cluster.run(until_ms=80.0)
    assert cluster.machine("red").crashed
    assert [when for when, __ in injector.log] == [50.0]
    cluster.run(until_ms=200.0)
    assert not cluster.machine("red").crashed
    assert [when for when, __ in injector.log] == [50.0, 120.0]


def test_applied_log_is_reproducible():
    def run():
        cluster = Cluster(seed=9)
        plan = (
            FaultPlan()
            .loss_burst(10.0, duration_ms=30.0, loss=0.3)
            .partition(40.0, [["red", "blue"], ["green", "yellow"]])
            .heal(60.0)
            .crash(70.0, "green")
        )
        injector = FaultInjector(cluster, plan).arm()
        cluster.run(until_ms=100.0)
        return injector.describe_applied()

    assert run() == run()
