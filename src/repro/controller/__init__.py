"""The control process (Sections 3.5 and 4).

A command interpreter providing "a concise menu of commands to use in
the measurement and control of one or more distributed computations":
help, filter, newjob, addprocess, acquire, setflags, startjob, stopjob,
removejob, removeprocess, jobs, getlog, source, sink, die.
"""

from repro.controller.control import PROMPT, controller
from repro.controller.states import (
    ACQUIRED,
    KILLED,
    NEW,
    RUNNING,
    STOPPED,
    can_transition,
)

__all__ = [
    "PROMPT",
    "controller",
    "ACQUIRED",
    "KILLED",
    "NEW",
    "RUNNING",
    "STOPPED",
    "can_transition",
]
