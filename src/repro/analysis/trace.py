"""Trace model: events as read back from a filter log file."""

from repro.filtering.records import parse_trace


class Event:
    """One event record, with convenience accessors.

    A process is identified by ``(machine, pid)``: pids are only unique
    per machine (Section 3.5.1), and sockets ("sock") only unique
    within a machine (Section 4.1).
    """

    __slots__ = ("record", "index", "proc_seq")

    def __init__(self, record, index):
        self.record = record
        self.index = index  # position in the trace file
        self.proc_seq = None  # position within the process, set by Trace

    @property
    def event(self):
        return self.record.get("event")

    @property
    def machine(self):
        return self.record.get("machine")

    @property
    def pid(self):
        return self.record.get("pid")

    @property
    def process(self):
        return (self.machine, self.pid)

    @property
    def local_time(self):
        """The machine's local clock at the event (header cpuTime)."""
        return self.record.get("cpuTime", 0)

    @property
    def proc_time(self):
        """CPU time charged to the process (10 ms granularity)."""
        return self.record.get("procTime", 0)

    @property
    def sock(self):
        return self.record.get("sock")

    @property
    def msg_length(self):
        return self.record.get("msgLength", 0)

    def name(self, field):
        value = self.record.get(field, "")
        return value if value else None

    def __getitem__(self, key):
        return self.record[key]

    def get(self, key, default=None):
        return self.record.get(key, default)

    def __repr__(self):
        return "Event({0}, {1}@m{2}, t={3})".format(
            self.event, self.pid, self.machine, self.local_time
        )


class Trace:
    """An ordered collection of events (one filter's log).

    Indexes (per process, per event type) are built once up front and
    the default :class:`~repro.analysis.matching.MessageMatcher` is
    cached, so the analysis suite over one trace pairs messages and
    scans for event types a single time no matter how many analyses
    run.
    """

    def __init__(self, records):
        self.events = [Event(record, i) for i, record in enumerate(records)]
        self._by_process = {}
        self._by_type = {}
        for event in self.events:
            seq = self._by_process.setdefault(event.process, [])
            event.proc_seq = len(seq)
            seq.append(event)
            self._by_type.setdefault(event.event, []).append(event)
        self._machines = None
        self._matcher = None

    @classmethod
    def from_text(cls, text):
        return cls(parse_trace(text))

    @classmethod
    def from_session(cls, session, filtername):
        return cls(session.read_trace(filtername))

    @classmethod
    def from_store(cls, reader, machines=None, pids=None, events=None,
                   t_min=None, t_max=None, salvage=False):
        """Build a trace by streaming a :class:`~repro.tracestore.
        StoreReader` scan.

        Records flow straight from the store's segments through the
        pushdown predicate into the trace: segments the footers rule
        out are never read, and records the predicate rejects are
        never materialized -- only the selection becomes Events.  With
        no predicate this is record-for-record identical to
        :meth:`from_text` on the equivalent text log.

        Integrity: strict by default -- a damaged segment raises
        :class:`~repro.tracestore.errors.CorruptSegmentError` rather
        than building a trace that silently differs from what was
        recorded.  With ``salvage=True`` the trace is built from every
        verifiable frame and ``reader.last_stats`` quantifies the loss
        (``bytes_quarantined`` / ``frames_corrupt``) -- answers with
        error bars instead of a crash or a lie.

        Decoding goes through the batch fast lane
        (:func:`~repro.tracestore.scan_fast`), which is record-for-
        record identical to ``reader.scan`` -- trace construction is
        the all-records scan the fused decoder was built for.
        """
        from repro.tracestore import scan_fast

        return cls(
            scan_fast(
                reader,
                machines=machines,
                pids=pids,
                events=events,
                t_min=t_min,
                t_max=t_max,
                salvage=salvage,
            )
        )

    @classmethod
    def from_stores(cls, *readers, **predicates):
        """One trace from several filters' stores, interleaved by the
        k-way (cpuTime, machine) merge of :func:`~repro.tracestore.
        merge_scan_fast` (the streaming analogue of :meth:`merge`)."""
        from repro.tracestore import merge_scan_fast

        return cls(merge_scan_fast(readers, **predicates))

    @classmethod
    def merge(cls, *traces):
        """Merge several filters' traces into one.

        Section 3.4 allows one filter per computation; a study spanning
        several computations (or several filters for load spreading)
        merges their logs before analysis.  Records are interleaved by
        (machine, local time), which is only a heuristic order across
        machines -- the analyses that care use happens-before, not
        record order across machines.
        """
        records = [event.record for trace in traces for event in trace]
        records.sort(key=lambda r: (r.get("cpuTime", 0), r.get("machine", 0)))
        return cls(records)

    def __len__(self):
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def processes(self):
        """All (machine, pid) pairs seen, in first-appearance order."""
        return list(self._by_process)

    def events_for(self, process):
        return list(self._by_process.get(process, []))

    def by_type(self, event_name):
        return list(self._by_type.get(event_name, []))

    def machines(self):
        if self._machines is None:
            self._machines = sorted(
                {event.machine for event in self.events}
            )
        return list(self._machines)

    def matcher(self):
        """The shared default matcher for this trace, built on first
        use -- analyses constructed without an explicit matcher all
        reuse this one pairing."""
        if self._matcher is None:
            from repro.analysis.matching import MessageMatcher

            self._matcher = MessageMatcher(self)
        return self._matcher
