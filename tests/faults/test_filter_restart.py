"""Filter crash recovery: the daemon relaunches a dead filter and the
trace continues in the same log.

Two layers under test: the meterdaemon's supervision (a filter killed
behind the controller's back is relaunched with the same argv, bounded
by a restart budget) and the log continuity that relaunch depends on
(append mode plus batch-sequence recovery, so the replacement extends
rather than erases the first incarnation's records).
"""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs


def _talker(sys, argv):
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
    yield sys.bind(fd, ("", 6100))
    for i in range(4):
        yield sys.sendto(fd, b"x" * 64, ("green", 6101))
    yield sys.exit(0)


def _run_job(session, jobname):
    session.command("newjob {0}".format(jobname))
    session.command("addprocess {0} red talker".format(jobname))
    session.command("setflags {0} send socket termproc".format(jobname))
    session.command("startjob {0}".format(jobname))
    session.settle()


def test_filter_crash_is_healed_by_relaunch():
    cluster = Cluster(seed=33)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("talker", _talker)
    session.command("filter f1 blue")
    _run_job(session, "j1")
    first = session.read_trace("f1")
    assert first

    # The filter dies behind the controller's back; its meterdaemon
    # notices the death and relaunches it -- no operator command.
    plan = FaultPlan().kill_filter(cluster.sim.now + 5.0, "blue")
    FaultInjector(cluster, plan).arm()
    session.settle(ms=200.0)

    transcript = session.transcript()
    assert "WARNING: filter 'f1' on blue was relaunched" in transcript
    assert "DONE: filter 'f1' terminated" not in transcript
    # Still listed, under a new identifier.
    listing = session.command("filter")
    assert "filter 'f1'" in listing

    # The replacement extends the same log: a second job's records land
    # after the first job's, nothing truncated.
    _run_job(session, "j2")
    combined = session.read_trace("f1")
    assert combined[: len(first)] == first
    assert len(combined) == 2 * len(first)


def test_process_death_during_filter_restart_yields_one_end_record():
    """The race the notification retries exist for: a metered process
    dies while its filter is down (killed, not yet relaunched).  The
    termproc record must ride the orphan-drain path into the log
    exactly once, and the controller must report the death exactly
    once -- the daemon's retried notification and the reconcile pass
    must not double-report."""
    from repro.programs import install_all

    cluster = Cluster(seed=35)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    # A short producer: ~50ms of sends, so it terminates inside the
    # filter's relaunch backoff window when we kill the filter mid-run.
    session.command("addprocess j red dgramproducer green 6000 10 64 5")
    session.command("setflags j send termproc immediate")
    session.command("startjob j")
    session.settle(20)
    plan = FaultPlan().kill_filter(cluster.sim.now + 1.0, "blue")
    FaultInjector(cluster, plan).arm()
    session.settle()

    transcript = session.transcript()
    assert "WARNING: filter 'f1' on blue was relaunched" in transcript
    done = "DONE: process dgramproducer in job 'j' terminated"
    assert transcript.count(done) == 1

    records = session.read_trace("f1")
    producers = [
        p
        for p in cluster.machine("red").procs.values()
        if p.program_name == "dgramproducer"
    ]
    pid = producers[0].pid
    ends = [
        r for r in records if r["event"] == "termproc" and r["pid"] == pid
    ]
    assert len(ends) == 1
    sends = [r for r in records if r["event"] == "send" and r["pid"] == pid]
    assert len(sends) == 10  # nothing lost across the gap either


def test_filter_restart_budget_exhaustion_reports_death():
    cluster = Cluster(seed=34)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("talker", _talker)
    session.command("filter f1 blue")
    _run_job(session, "j1")

    # Kill the filter once more than the daemon is willing to relaunch
    # it; the final death is reported instead of healed.  Kills are
    # spaced past the relaunch backoff so each one lands on a live
    # incarnation.
    now = cluster.sim.now
    plan = FaultPlan()
    for i in range(5):
        plan.kill_filter(now + 5.0 + 900.0 * i, "blue")
    FaultInjector(cluster, plan).arm()
    session.settle(ms=5000.0)
    session.settle()

    transcript = session.transcript()
    assert "WARNING: filter 'f1' on blue was relaunched" in transcript
    assert "DONE: filter 'f1' terminated" in transcript
    assert "filter restart budget exhausted" in transcript
    assert "f1" not in session.command("filter")
