"""Annotated hexdumps of meter messages.

A debugging aid for the wire protocol itself: render a raw meter
message byte-for-byte with each field labelled, the way one would
check the Appendix-A layouts against a real trace::

    >>> print(annotate_message(raw))
    send message, 60 bytes
      [ 0: 4] size         0000003c = 60
      [ 4: 6] machine          0001 = 1
      ...
"""

from repro.metering import messages
from repro.metering.messages import EVENT_NAMES, HEADER_BYTES
from repro.net.addresses import decode_name

_HEADER_LAYOUT = [
    ("size", 0, 4),
    ("machine", 4, 2),
    ("(pad)", 6, 2),
    ("cpuTime", 8, 4),
    ("Dummy", 12, 4),
    ("procTime", 16, 4),
    ("traceType", 20, 4),
]


def _int_of(raw):
    return int.from_bytes(raw, "big", signed=True)


def _row(label, offset, chunk, value):
    return "  [{0:>3}:{1:>3}] {2:<13} {3:<32} = {4}".format(
        offset, offset + len(chunk), label, chunk.hex(), value
    )


def annotate_message(raw, host_names=None):
    """Render one raw meter message as an annotated hexdump."""
    if len(raw) < HEADER_BYTES:
        raise ValueError("short meter message: %d bytes" % len(raw))
    trace_type = _int_of(raw[20:24])
    event = EVENT_NAMES.get(trace_type)
    if event is None:
        raise ValueError("unknown traceType %d" % trace_type)
    lines = ["{0} message, {1} bytes".format(event, _int_of(raw[0:4]))]
    for label, offset, nbytes in _HEADER_LAYOUT:
        chunk = raw[offset : offset + nbytes]
        lines.append(_row(label, offset, chunk, _int_of(chunk)))
    for name, offset, nbytes, base in messages.field_layout(event):
        absolute = HEADER_BYTES + offset
        chunk = raw[absolute : absolute + nbytes]
        if base == 16 and nbytes == 16:
            decoded = decode_name(chunk, host_names or {})
            value = decoded.display() if decoded is not None else "(no name)"
        else:
            value = _int_of(chunk)
        lines.append(_row(name, absolute, chunk, value))
    return "\n".join(lines)


def annotate_stream(raw, host_names=None, limit=None):
    """Annotate every message in a concatenated meter byte stream."""
    blocks = []
    offset = 0
    count = 0
    while offset + 4 <= len(raw):
        size = _int_of(raw[offset : offset + 4])
        if size <= 0 or offset + size > len(raw):
            break
        blocks.append(annotate_message(raw[offset : offset + size], host_names))
        offset += size
        count += 1
        if limit is not None and count >= limit:
            break
    return "\n\n".join(blocks)
