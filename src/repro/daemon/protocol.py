"""The controller/daemon wire protocol (Figure 3.6).

"The exchange is structured as a remote procedure call": the controller
opens a stream connection to a daemon, sends one request, waits for the
one reply, and both sides close.  Each message has a numeric *type* and
a variable *body*; Figure 3.6 shows type 11 (create request: filename,
parameter list, filter port/host, meter flags, control port/host) and
type 18 (create reply: pid, status).

We keep the paper's type numbers for create, number the other
operations in the same style, and encode bodies as JSON inside a
4-byte-length frame (the 1984 implementation used a hand-packed C
struct; JSON carries the same named fields without a second codec --
see DESIGN.md, substitutions).
"""

import json

# Request types (Figure 3.6 numbers create requests from 11).
CREATE_REQ = 11
CREATE_FILTER_REQ = 12
SETFLAGS_REQ = 13
SIGNAL_REQ = 14
ACQUIRE_REQ = 15
UNMETER_REQ = 16
GETLOG_REQ = 17

STDIN_REQ = 25  # deliver bytes to a child's standard input (3.5.2)

# Recovery-layer requests: liveness probe, daemon census, meter
# reconnection after a filter relaunch, and child adoption after a
# controller restart (resume).
PING_REQ = 27
STATUS_REQ = 32
REMETER_REQ = 34
ADOPT_REQ = 36

# Reply types (create reply is 18 in Figure 3.6).
CREATE_REPLY = 18
CREATE_FILTER_REPLY = 19
SETFLAGS_REPLY = 20
SIGNAL_REPLY = 21
ACQUIRE_REPLY = 22
UNMETER_REPLY = 23
GETLOG_REPLY = 24
STDIN_REPLY = 26
PING_REPLY = 28
ERROR_REPLY = 29
STATUS_REPLY = 33
REMETER_REPLY = 35
ADOPT_REPLY = 37

# Daemon-initiated notifications (daemon connects to the controller's
# notification socket; Section 3.5.1's one exception to the RPC flow).
TERMINATION_NOTIFY = 30
OUTPUT_NOTIFY = 31
FILTER_RESTART_NOTIFY = 38  # a supervised filter was relaunched

# Live-analysis requests: the daemon relays a query to the streaming
# engine inside a local filter (repro.streaming) and returns its reply.
STATS_REQ = 39
WATCH_REQ = 41
STATS_REPLY = 40
WATCH_REPLY = 42

REPLY_FOR = {
    CREATE_REQ: CREATE_REPLY,
    CREATE_FILTER_REQ: CREATE_FILTER_REPLY,
    SETFLAGS_REQ: SETFLAGS_REPLY,
    SIGNAL_REQ: SIGNAL_REPLY,
    ACQUIRE_REQ: ACQUIRE_REPLY,
    UNMETER_REQ: UNMETER_REPLY,
    GETLOG_REQ: GETLOG_REPLY,
    STDIN_REQ: STDIN_REPLY,
    PING_REQ: PING_REPLY,
    STATUS_REQ: STATUS_REPLY,
    REMETER_REQ: REMETER_REPLY,
    ADOPT_REQ: ADOPT_REPLY,
    STATS_REQ: STATS_REPLY,
    WATCH_REQ: WATCH_REPLY,
}

OK = "ok"


def encode(msg_type, **body):
    """Build the wire payload for one protocol message."""
    return json.dumps({"type": msg_type, "body": body}).encode("ascii")


def decode(payload):
    """Parse a payload into ``(type, body dict)``."""
    message = json.loads(payload.decode("ascii"))
    return message["type"], message["body"]


def error_reply(reason):
    return encode(ERROR_REPLY, status=str(reason))


def stamp(payload, **fields):
    """Add body fields to an already-encoded message (existing fields
    win).  Lets the daemon's serve loop annotate every reply -- e.g.
    its boot epoch -- without threading the fields through each
    handler."""
    message = json.loads(payload.decode("ascii"))
    for key, value in fields.items():
        message["body"].setdefault(key, value)
    return json.dumps(message).encode("ascii")


def is_ok(body):
    return body.get("status") == OK
