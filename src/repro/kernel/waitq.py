"""Sleep/wakeup primitives, in the style of the BSD kernel.

A blocked syscall parks its process on one or more :class:`WaitQueue`
objects.  When the awaited condition may have changed (data arrived, a
connection was queued, a child terminated), the kernel calls
:meth:`WaitQueue.wake_all`, and each parked process *retries* its
syscall handler; if the condition still does not hold, it goes back to
sleep.  This retry discipline keeps handlers stateless with respect to
wakeups and mirrors the classic ``sleep()``/``wakeup()`` loop.
"""


class WaitQueue:
    """An ordered set of processes waiting for a condition."""

    __slots__ = ("_procs", "label")

    def __init__(self, label=""):
        self._procs = []
        self.label = label

    def add(self, proc):
        if proc not in self._procs:
            self._procs.append(proc)

    def discard(self, proc):
        if proc in self._procs:
            self._procs.remove(proc)

    def wake_all(self):
        """Retry every parked process (each via its own machine)."""
        for proc in list(self._procs):
            proc.machine.wake(proc)

    def __len__(self):
        return len(self._procs)

    def __contains__(self, proc):
        return proc in self._procs

    def __repr__(self):
        return "WaitQueue({0!r}, {1} waiting)".format(self.label, len(self._procs))
