"""Space-time diagram rendering."""

from repro.analysis.timeline import Timeline, render_timeline
from tests.analysis.harness import two_process_stream_trace


def test_header_names_every_process_column():
    timeline = Timeline(two_process_stream_trace())
    header = timeline.header()
    assert "1/10" in header
    assert "2/20" in header


def test_every_event_gets_one_row():
    trace = two_process_stream_trace()
    timeline = Timeline(trace)
    rows = list(timeline.rows())
    assert len(rows) == len(trace)


def test_rows_follow_the_consistent_global_order():
    trace = two_process_stream_trace()
    timeline = Timeline(trace)
    rendered = timeline.render()
    # The client's send must appear above the server's receive.
    lines = rendered.splitlines()
    send_row = next(i for i, l in enumerate(lines) if "Send>" in l or "Send" in l)
    recv_rows = [i for i, l in enumerate(lines) if "Rece" in l]
    assert recv_rows and send_row < max(recv_rows)


def test_message_arrows_point_to_peer_columns():
    trace = two_process_stream_trace()
    rendered = Timeline(trace).render()
    assert ">" in rendered  # a send pointing at its receiver's column
    assert "<" in rendered  # a receive pointing back


def test_max_rows_truncation():
    trace = two_process_stream_trace()
    rendered = render_timeline(trace, max_rows=2)
    assert "more events" in rendered


def test_local_times_annotated():
    rendered = render_timeline(two_process_stream_trace())
    assert "t=100" in rendered
