"""The paper's kernel additions: metering.

- :mod:`repro.metering.flags`    -- ``<meterflags.h>``: event flags and
  the special setmeter argument values;
- :mod:`repro.metering.messages` -- ``<metermsgs.h>``: the Appendix-A
  meter message formats with byte-accurate binary codecs;
- :mod:`repro.metering.subsystem` -- the in-kernel meter: event
  detection hooks, per-process buffering, flush-on-termination, and the
  ``setmeter(2)`` system call (Appendix C).
"""

from repro.metering import flags
from repro.metering.flags import (
    M_ALL,
    M_IMMEDIATE,
    METERACCEPT,
    METERCONNECT,
    METERDESTSOCKET,
    METERDUP,
    METERFORK,
    METERRECEIVE,
    METERRECEIVECALL,
    METERSEND,
    METERSOCKET,
    METERTERMPROC,
    NO_CHANGE,
    NONE,
    SELF,
    SOCK_NONE,
    flag_name,
    flags_from_names,
    names_from_flags,
)
from repro.metering.messages import (
    EVENT_NAMES,
    EVENT_TYPES,
    HEADER_BYTES,
    MessageCodec,
    decode_stream,
)
from repro.metering.subsystem import MeterSubsystem

__all__ = [
    "flags",
    "M_ALL",
    "M_IMMEDIATE",
    "METERACCEPT",
    "METERCONNECT",
    "METERDESTSOCKET",
    "METERDUP",
    "METERFORK",
    "METERRECEIVE",
    "METERRECEIVECALL",
    "METERSEND",
    "METERSOCKET",
    "METERTERMPROC",
    "NO_CHANGE",
    "NONE",
    "SELF",
    "SOCK_NONE",
    "flag_name",
    "flags_from_names",
    "names_from_flags",
    "EVENT_NAMES",
    "EVENT_TYPES",
    "HEADER_BYTES",
    "MessageCodec",
    "decode_stream",
    "MeterSubsystem",
]
