"""The acceptance chaos scenario (ISSUE): a meterdaemon is killed
mid-job and a two-way partition opens and later heals.  The controller
must report the degraded machine without hanging, surviving processes
must complete, the filter log must hold every meter record from the
unaffected machines, and the whole run must be deterministic."""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs
from repro.programs import install_all

SEED = 1234


def _run_chaos(seed=SEED):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    # Two producers: red is never touched by a fault (its 40 send
    # events must all reach the filter); green loses its daemon and is
    # then partitioned away from everything, filter included.
    session.command("addprocess j red dgramproducer green 6000 40 64 5")
    session.command("addprocess j green dgramproducer red 6001 40 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    now = cluster.sim.now
    plan = (
        FaultPlan()
        .kill_daemon(now + 20.0, "green")
        .partition(now + 60.0, [["red", "blue", "yellow"], ["green"]])
        .heal(now + 160.0)
    )
    injector = FaultInjector(cluster, plan, session=session).arm()
    session.settle()
    stop_out = session.command("stopjob j")
    jobs_out = session.command("jobs j")
    session.settle()
    producers = {
        name: [
            p
            for p in cluster.machine(name).procs.values()
            if p.program_name == "dgramproducer"
        ]
        for name in ("red", "green")
    }
    __, log_text = session.find_filter_log("f1")
    return {
        "session": session,
        "cluster": cluster,
        "stop_out": stop_out,
        "jobs_out": jobs_out,
        "transcript": session.transcript(),
        "applied": injector.describe_applied(),
        "log_text": log_text,
        "producers": producers,
    }


def test_chaos_controller_reports_degraded_machine_without_hanging():
    result = _run_chaos()
    assert result["session"].controller_alive()
    # The liveness probes noticed the dead daemon without any operator
    # command (the warning shows up in the transcript, not as part of a
    # command's output), and commands to the machine still return.
    assert "not stopped" in result["stop_out"]
    assert (
        "WARNING: meterdaemon on 'green' is not responding"
        in result["transcript"]
    )
    assert (
        "degraded machines (meterdaemon not responding): green"
        in result["jobs_out"]
    )
    # The enriched jobs view carries probe bookkeeping for the
    # degraded machine.
    assert "failure(s), last probe at" in result["jobs_out"]


def test_chaos_surviving_processes_complete():
    result = _run_chaos()
    # The unaffected producer terminated normally and was reported.
    assert (
        "DONE: process dgramproducer in job 'j' terminated: reason: normal"
        in result["transcript"]
    )
    # Both workloads finished on their own, faults notwithstanding:
    # losing the daemon and the meter connection never perturbs the
    # computation itself (Section 2 transparency).
    for name in ("red", "green"):
        producer = result["producers"][name][0]
        assert producer.state == defs.PROC_ZOMBIE
        assert producer.exit_reason == defs.EXIT_NORMAL


def test_chaos_trace_complete_for_unaffected_machines():
    result = _run_chaos()
    cluster = result["cluster"]
    red_id = cluster.machine("red").host.host_id
    records = result["session"].read_trace("f1")
    red_sends = [
        r
        for r in records
        if r["event"] == "send" and r["machine"] == red_id
    ]
    # Every one of red's 40 metered sends made it into the log.
    assert len(red_sends) == 40


def test_chaos_run_is_deterministic():
    first = _run_chaos()
    second = _run_chaos()
    assert first["applied"] == second["applied"]
    assert first["transcript"] == second["transcript"]
    assert first["log_text"] == second["log_text"]
