"""select() semantics: readiness, timeout, child events."""

from repro.kernel import defs
from tests.conftest import run_guests


def test_select_returns_ready_socket(cluster):
    results = []

    def receiver(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        ready, __ = yield sys.select([fd])
        results.append(ready)
        yield sys.exit(0)

    def sender(sys, argv):
        yield sys.sleep(20)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"wake", ("red", 6000))
        yield sys.exit(0)

    run_guests(cluster, ("red", receiver, ()), ("green", sender, ()))
    assert len(results[0]) == 1


def test_select_timeout_returns_empty(cluster):
    times = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        start = yield sys.gettimeofday()
        ready, __ = yield sys.select([fd], timeout_ms=50)
        end = yield sys.gettimeofday()
        times.append((ready, end - start))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    ready, elapsed = times[0]
    assert ready == []
    assert elapsed >= 49.0


def test_select_zero_timeout_polls(cluster):
    results = []

    def guest(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        ready, __ = yield sys.select([fd], timeout_ms=0)
        results.append(ready)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert results == [[]]


def test_select_multiple_fds_reports_only_ready(cluster):
    results = []

    def receiver(sys, argv):
        quiet = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(quiet, ("", 6001))
        busy = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(busy, ("", 6000))
        ready, __ = yield sys.select([quiet, busy])
        results.append((ready, busy))
        yield sys.exit(0)

    def sender(sys, argv):
        yield sys.sleep(20)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    run_guests(cluster, ("red", receiver, ()), ("green", sender, ()))
    ready, busy_fd = results[0]
    assert ready == [busy_fd]


def test_select_listener_readable_on_pending_connection(cluster):
    results = []

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        ready, __ = yield sys.select([fd])
        results.append(ready == [fd])
        conn, __peer = yield sys.accept(fd)  # returns at once
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, ("red", 5000)
        )
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert results == [True]


def test_select_want_children_wakes_on_termination(cluster):
    events = []

    def child(sys, argv):
        yield sys.compute(30)
        yield sys.exit(5)

    def parent(sys, argv):
        yield sys.fork(child, ())
        __, child_events = yield sys.select([], want_children=True)
        events.extend(child_events)
        yield sys.exit(0)

    run_guests(cluster, ("red", parent, ()))
    assert events[0]["status"] == 5


def test_select_mixes_fds_and_children(cluster):
    seen = []

    def child(sys, argv):
        yield sys.compute(10)
        yield sys.exit(0)

    def sender(sys, argv):
        yield sys.sleep(40)
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.sendto(fd, b"x", ("red", 6000))
        yield sys.exit(0)

    def parent_with_fork(sys, argv):
        yield sys.fork(child, ())
        yield from parent_body(sys, argv)

    def parent_body(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", 6000))
        got_child = False
        got_data = False
        while not (got_child and got_data):
            ready, child_events = yield sys.select([fd], want_children=True)
            if child_events:
                got_child = True
            if ready:
                yield sys.recvfrom(fd, 100)
                got_data = True
        seen.append("both")
        yield sys.exit(0)

    run_guests(cluster, ("red", parent_with_fork, ()), ("green", sender, ()))
    assert seen == ["both"]


def test_tty_select_and_read(cluster):
    from repro.kernel.tty import Terminal

    machine = cluster.machine("red")
    tty = Terminal()
    lines = []

    def guest(sys, argv):
        ready, __ = yield sys.select([0])
        data = yield sys.read(0, 100)
        lines.append(data)
        yield sys.exit(0)

    proc = machine.create_process(main=guest, uid=100, start=False)
    machine.attach_terminal(proc, tty)
    machine.continue_proc(proc)
    cluster.run(until_ms=20)
    assert lines == []  # nothing typed yet
    tty.push_line("hello")
    cluster.run_until_exit([proc])
    assert lines == [b"hello\n"]
