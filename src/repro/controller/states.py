"""The controller's process state machine (Figure 4.2).

Five states: *new*, *acquired*, *running*, *stopped*, *killed*.

- new -> running (startjob) or new -> stopped (stopjob);
- running <-> stopped;
- running -> killed (the process completes);
- stopped -> killed (the user removes the job before completion);
- new -/-> killed: "This restriction is enforced as a precautionary
  measure, ensuring that the user does not accidentally remove a
  computation that is in progress";
- acquired is entered directly and is terminal: "An acquired process
  cannot be stopped or killed, it can only be metered."
"""

NEW = "new"
ACQUIRED = "acquired"
RUNNING = "running"
STOPPED = "stopped"
KILLED = "killed"

ALL_STATES = (NEW, ACQUIRED, RUNNING, STOPPED, KILLED)

#: States in which a process counts as active (die refuses to exit).
ACTIVE_STATES = (NEW, STOPPED, RUNNING, ACQUIRED)

_LEGAL = {
    (NEW, RUNNING),
    (NEW, STOPPED),
    (RUNNING, STOPPED),
    (STOPPED, RUNNING),
    (RUNNING, KILLED),
    (STOPPED, KILLED),
}


def can_transition(old, new):
    """Whether the Figure 4.2 diagram permits ``old -> new``."""
    return (old, new) in _LEGAL


def startable(state):
    """startjob: "All processes in the new or stopped state are
    signaled to begin or resume execution."""
    return state in (NEW, STOPPED)


def stoppable(state):
    """stopjob: "All processes ... in the new or running state are
    signaled to halt execution."""
    return state in (NEW, RUNNING)


def removable(state):
    """removejob: "A job can only be removed if all of its processes
    are in one of the states killed, stopped, or acquired."""
    return state in (KILLED, STOPPED, ACQUIRED)
