"""The controller guest program: the users' interface (Section 4.3).

Runs on the machine the programmer chose, reads commands from the
terminal (or from sourced scripts), performs them by RPC to the
meterdaemons, and reports asynchronous state changes ("DONE: process B
in job 'foo' terminated: reason: normal").
"""

from repro import guestlib
from repro.controller import states
from repro.controller.model import FilterInfo, Job, ProcessRecord
from repro.daemon import protocol
from repro.daemon.meterdaemon import METERDAEMON_PORT
from repro.kernel import defs
from repro.kernel.errno import SyscallError, errno_name
from repro.metering import flags as mflags

PROMPT = "<Control> "

DEFAULT_FILTER_FILE = "filter"
DEFAULT_DESCRIPTIONS = "descriptions"
DEFAULT_TEMPLATES = "templates"
MAX_SOURCE_DEPTH = 16

#: Characters allowed in command parameters (Section 4.3 plus '-' for
#: flag resets and '_' for file names).
_PARAM_CHARS = set(
    "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ/.-_*"
)

HELP_TEXT = """\
Commands:
  help                                           this menu
  filter [<name> [<machine> [<file> [<descr> [<templates>]]]]]
                                                 create or list filters
  newjob <jobname> [<filtername>]                create a job
  addprocess <jobname> <machine> <file> [<parms>...]   add a process
  acquire <jobname> <machine> <pid>              meter a running process
  setflags <jobname> <flag1> [<flag2>...]        set metering flags
  startjob <jobname>                             start the job
  stopjob <jobname>                              stop the job
  removejob <jobname>                            remove the job
  removeprocess <jobname> <procname>             remove one process
  jobs [<jobname>...]                            show job status
  getlog <filtername> <destfile>                 fetch a trace file
  source <filename>                              run a command script
  sink [<filename>]                              redirect output
  input <jobname> <procname> <word>...           send a line to a
                                                 process' standard input
  stdinfile <jobname> <procname> <filename>      redirect a file into a
                                                 process' standard input
  die                                            exit the controller
Metering flags:
  fork termproc send receivecall receive socket dup destsocket
  accept connect all immediate  (prefix '-' to reset)"""


class _InputSource:
    def __init__(self, fd, is_tty):
        self.fd = fd
        self.is_tty = is_tty
        self.buffered = [b""]


class ControllerState:
    """All state of one controller instance."""

    def __init__(self):
        self.uid = None
        self.hostname = None
        #: Per-session log placement (argv; None means the daemon's
        #: default /usr/tmp) and format ("text" or "store").
        self.log_directory = None
        self.log_format = "text"
        self.notify_listen = None
        self.notify_port = None
        #: notify conn fd -> reassembly buffer
        self.notify_buffers = {}
        self.filters = {}  # name -> FilterInfo
        self.filter_order = []  # creation order (for the default filter)
        self.jobs = {}  # name -> Job
        #: machine -> {"failures": int, "degraded": bool} (RPC health).
        self.daemon_health = {}
        self.next_job_number = 1
        self.input_stack = []
        self.sink_fd = None  # output file fd, or None for the terminal
        self.die_warned = False
        self.dead = False

    def default_filter(self):
        """"If no filter is indicated, the control program uses the
        default filter process" -- the most recently created one."""
        if not self.filter_order:
            return None
        return self.filters[self.filter_order[-1]]

    def find_record(self, machine, pid):
        for job in self.jobs.values():
            for record in job.processes:
                if record.machine == machine and record.pid == pid:
                    return job, record
        return None, None

    def active_count(self):
        return sum(len(job.active_processes()) for job in self.jobs.values())


def controller(sys, argv):
    """Guest main for the control process."""
    state = ControllerState()
    state.uid = yield sys.getuid()
    state.hostname = yield sys.hostname()
    if len(argv) > 1 and argv[1]:
        state.log_directory = argv[1]
    if len(argv) > 2 and argv[2]:
        state.log_format = argv[2]

    # The notification socket: daemons connect here to report process
    # state changes (Section 3.5.1).
    nfd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(nfd, ("", 0))
    yield sys.listen(nfd, defs.SOMAXCONN)
    state.notify_listen = nfd
    name = yield sys.getsockname(nfd)
    state.notify_port = name.port

    state.input_stack.append(_InputSource(0, is_tty=True))

    while not state.dead:
        source = state.input_stack[-1]
        if source.is_tty:
            line = yield from _read_tty_line(sys, state, source)
        else:
            yield from _poll_notifications(sys, state)
            line = yield from guestlib.read_line(sys, source.fd, source.buffered)
            if line is None:
                yield sys.close(source.fd)
                state.input_stack.pop()
                continue
        yield from _dispatch(sys, state, line)
    yield sys.exit(0)


# ----------------------------------------------------------------------
# Input and notifications
# ----------------------------------------------------------------------


def _read_tty_line(sys, state, source):
    """Prompt, then wait for a command while servicing notifications."""
    yield sys.write(1, PROMPT.encode("ascii"))
    while True:
        fds = [source.fd, state.notify_listen] + list(state.notify_buffers)
        ready, __ = yield sys.select(fds)
        yield from _handle_notification_fds(sys, state, ready)
        if source.fd in ready:
            line = yield from guestlib.read_line(sys, source.fd, source.buffered)
            if line is None:
                return "die"  # control-D
            return line


def _poll_notifications(sys, state):
    fds = [state.notify_listen] + list(state.notify_buffers)
    ready, __ = yield sys.select(fds, timeout_ms=0)
    yield from _handle_notification_fds(sys, state, ready)


def _handle_notification_fds(sys, state, ready):
    for fd in ready:
        if fd == state.notify_listen:
            conn, __ = yield sys.accept(state.notify_listen)
            state.notify_buffers[conn] = b""
        elif fd in state.notify_buffers:
            try:
                data = yield sys.read(fd, 4096)
            except SyscallError:
                data = b""  # daemon's machine died mid-notification
            if not data:
                yield sys.close(fd)
                del state.notify_buffers[fd]
                continue
            buf = state.notify_buffers[fd] + data
            while len(buf) >= 4:
                length = int.from_bytes(buf[:4], "big")
                if len(buf) - 4 < length:
                    break
                payload = buf[4 : 4 + length]
                buf = buf[4 + length :]
                yield from _handle_notification(sys, state, payload)
            state.notify_buffers[fd] = buf


def _handle_notification(sys, state, payload):
    try:
        msg_type, body = protocol.decode(payload)
    except Exception:
        return  # junk on the notification port; ignore it
    if msg_type == protocol.TERMINATION_NOTIFY:
        yield from _on_termination(sys, state, body)
    elif msg_type == protocol.OUTPUT_NOTIFY:
        text = body.get("data", "").rstrip("\n")
        for line in text.splitlines():
            yield from _emit(
                sys, state, "{0}: {1}".format(body.get("procname"), line)
            )


def _on_termination(sys, state, body):
    machine, pid = body.get("machine"), body.get("pid")
    # A filter died?
    for info in list(state.filters.values()):
        if info.machine == machine and info.pid == pid:
            yield from _emit(
                sys,
                state,
                "DONE: filter '{0}' terminated: reason: {1}".format(
                    info.name, body.get("reason")
                ),
            )
            del state.filters[info.name]
            state.filter_order.remove(info.name)
            return
    job, record = state.find_record(machine, pid)
    if record is None:
        return
    record.state = states.KILLED
    yield from _emit(
        sys,
        state,
        "DONE: process {0} in job '{1}' terminated: reason: {2}".format(
            record.procname, job.name, body.get("reason")
        ),
    )


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------


def _emit(sys, state, text):
    fd = state.sink_fd if state.sink_fd is not None else 1
    yield sys.write(fd, (text + "\n").encode("ascii"))


# ----------------------------------------------------------------------
# RPC to meterdaemons
# ----------------------------------------------------------------------


#: RPC policy: per-call deadline, bounded retries on transient errors,
#: and per-machine health so a dead daemon degrades the machine instead
#: of wedging every later command behind full retry cycles.
RPC_DEADLINE_MS = 1500.0
RPC_ATTEMPTS = 3
RPC_BACKOFF_MS = 40.0
RPC_BACKOFF_CAP_MS = 320.0


def _daemon_health(state, machine):
    return state.daemon_health.setdefault(
        machine, {"failures": 0, "degraded": False}
    )


def _rpc(sys, state, machine, msg_type, **body):
    """One controller/daemon exchange (Section 3.5.1).

    Returns (reply type, reply body); connection problems surface as an
    ERROR_REPLY so command handlers report rather than crash.

    Robustness: each attempt carries a connect/receive deadline, and
    transient failures (daemon not up yet, path severed) are retried
    with jittered exponential backoff.  A machine whose daemon exhausts
    the retry budget is marked *degraded*: later RPCs to it fast-fail
    after a single attempt until one succeeds again.  A daemon that
    hangs up mid-exchange is NOT retried -- the request may already
    have executed (e.g. the process may have been created), and
    repeating it could duplicate the side effect.
    """
    body.setdefault("uid", state.uid)
    body.setdefault("control_host", state.hostname)
    body.setdefault("control_port", state.notify_port)
    request = protocol.encode(msg_type, **body)
    health = _daemon_health(state, machine)
    attempts = 1 if health["degraded"] else RPC_ATTEMPTS
    delay = RPC_BACKOFF_MS
    last_status = None
    for attempt in range(attempts):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, (machine, METERDAEMON_PORT), RPC_DEADLINE_MS)
            yield from guestlib.send_frame(sys, fd, request)
            payload = yield from guestlib.recv_frame_timeout(
                sys, fd, RPC_DEADLINE_MS
            )
        except SyscallError as err:
            yield sys.close(fd)
            health["failures"] += 1
            last_status = "no meterdaemon on '{0}' ({1})".format(
                machine, errno_name(err.errno)
            )
            if err.errno not in guestlib.TRANSIENT_ERRNOS:
                break
            if attempt + 1 < attempts:
                yield from guestlib.backoff_sleep(sys, delay)
                delay = min(delay * 2.0, RPC_BACKOFF_CAP_MS)
            continue
        yield sys.close(fd)
        if payload is None:
            # Mid-exchange hangup: ambiguous outcome, never retried.
            return protocol.ERROR_REPLY, {
                "status": "daemon closed the connection"
            }
        health["failures"] = 0
        if health["degraded"]:
            health["degraded"] = False
            yield from _emit(
                sys,
                state,
                "WARNING: meterdaemon on '{0}' is responding again".format(
                    machine
                ),
            )
        return protocol.decode(payload)
    if not health["degraded"]:
        health["degraded"] = True
        yield from _emit(
            sys,
            state,
            "WARNING: meterdaemon on '{0}' is not responding; "
            "marking machine degraded".format(machine),
        )
    return protocol.ERROR_REPLY, {"status": last_status}


# ----------------------------------------------------------------------
# Command dispatch
# ----------------------------------------------------------------------


def _valid_params(tokens):
    return all(set(token) <= _PARAM_CHARS for token in tokens)


def _dispatch(sys, state, line):
    tokens = line.split()
    if not tokens:
        return
    command = tokens[0].lower()
    args = tokens[1:]
    if command != "die":
        state.die_warned = False
    if not _valid_params(args):
        yield from _emit(sys, state, "bad parameter characters in command")
        return
    handler = _COMMANDS.get(command)
    if handler is None:
        yield from _emit(
            sys, state, "unknown command '{0}' (try help)".format(command)
        )
        return
    yield from handler(sys, state, args)


def cmd_help(sys, state, args):
    yield from _emit(sys, state, HELP_TEXT)


def cmd_filter(sys, state, args):
    if not args:
        if not state.filters:
            yield from _emit(sys, state, "no filters")
            return
        for name in state.filter_order:
            info = state.filters[name]
            yield from _emit(
                sys,
                state,
                "filter '{0}': identifier = {1}, machine = {2}".format(
                    info.name, info.pid, info.machine
                ),
            )
        return
    filtername = args[0]
    if filtername in state.filters:
        yield from _emit(
            sys, state, "filter '{0}' already exists".format(filtername)
        )
        return
    machine = args[1] if len(args) > 1 else state.hostname
    filterfile = args[2] if len(args) > 2 else DEFAULT_FILTER_FILE
    descriptions = args[3] if len(args) > 3 else DEFAULT_DESCRIPTIONS
    templates = args[4] if len(args) > 4 else DEFAULT_TEMPLATES
    request = dict(
        filtername=filtername,
        filterfile=filterfile,
        descriptions=descriptions,
        templates=templates,
        log_format=state.log_format,
    )
    if state.log_directory:
        request["log_directory"] = state.log_directory
    reply_type, body = yield from _rpc(
        sys, state, machine, protocol.CREATE_FILTER_REQ, **request
    )
    if reply_type != protocol.CREATE_FILTER_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys,
            state,
            "filter '{0}' not created: {1}".format(filtername, body.get("status")),
        )
        return
    info = FilterInfo(
        filtername,
        machine,
        body["pid"],
        body["meter_host"],
        body["meter_port"],
        body["log_path"],
    )
    state.filters[filtername] = info
    state.filter_order.append(filtername)
    yield from _emit(
        sys,
        state,
        "filter '{0}' ... created: identifier = {1}".format(filtername, info.pid),
    )


def cmd_newjob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: newjob <jobname> [<filtername>]")
        return
    jobname = args[0]
    if jobname in state.jobs:
        yield from _emit(sys, state, "job '{0}' already exists".format(jobname))
        return
    if len(args) > 1:
        info = state.filters.get(args[1])
        if info is None:
            yield from _emit(sys, state, "no filter '{0}'".format(args[1]))
            return
    else:
        info = state.default_filter()
        if info is None:
            yield from _emit(
                sys,
                state,
                "a job cannot be created if a filter has not been created",
            )
            return
    state.jobs[jobname] = Job(jobname, info.name, state.next_job_number)
    state.next_job_number += 1


def cmd_addprocess(sys, state, args):
    if len(args) < 3:
        yield from _emit(
            sys,
            state,
            "usage: addprocess <jobname> <machine> <processfile> [<parms>...]",
        )
        return
    jobname, machine, processfile = args[0], args[1], args[2]
    params = args[3:]
    job = state.jobs.get(jobname)
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(jobname))
        return
    info = state.filters[job.filtername]
    request = dict(
        filename=processfile,
        params=list(params),
        filter_host=info.meter_host,
        filter_port=info.meter_port,
        meter_flags=job.flags,
        jobname=jobname,
        procname=processfile,
    )
    reply_type, body = yield from _rpc(
        sys, state, machine, protocol.CREATE_REQ, **request
    )
    if reply_type != protocol.CREATE_REPLY and "ENOENT" in str(body.get("status")):
        # The executable is not on the target machine: copy it there
        # (Section 3.5.3) and try once more.
        try:
            yield sys.rcp(state.hostname, processfile, machine, processfile)
        except SyscallError as err:
            yield from _emit(
                sys,
                state,
                "process '{0}' not created: cannot copy '{1}' ({2})".format(
                    processfile, processfile, errno_name(err.errno)
                ),
            )
            return
        reply_type, body = yield from _rpc(
            sys, state, machine, protocol.CREATE_REQ, **request
        )
    if reply_type != protocol.CREATE_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys,
            state,
            "process '{0}' not created: {1}".format(processfile, body.get("status")),
        )
        return
    record = ProcessRecord(processfile, jobname, machine, body["pid"], states.NEW)
    record.flags = job.flags
    job.processes.append(record)
    yield from _emit(
        sys,
        state,
        "process '{0}' ... created: identifier = {1}".format(
            processfile, body["pid"]
        ),
    )


def cmd_acquire(sys, state, args):
    if len(args) != 3:
        yield from _emit(
            sys, state, "usage: acquire <jobname> <machine> <process identifier>"
        )
        return
    jobname, machine = args[0], args[1]
    try:
        pid = int(args[2])
    except ValueError:
        yield from _emit(sys, state, "bad process identifier '{0}'".format(args[2]))
        return
    job = state.jobs.get(jobname)
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(jobname))
        return
    info = state.filters[job.filtername]
    reply_type, body = yield from _rpc(
        sys,
        state,
        machine,
        protocol.ACQUIRE_REQ,
        pid=pid,
        meter_flags=job.flags,
        filter_host=info.meter_host,
        filter_port=info.meter_port,
    )
    if reply_type != protocol.ACQUIRE_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "process {0} not acquired: {1}".format(pid, body.get("status"))
        )
        return
    record = ProcessRecord(str(pid), jobname, machine, pid, states.ACQUIRED)
    record.flags = job.flags
    job.processes.append(record)
    yield from _emit(sys, state, "process {0} ... acquired".format(pid))


def cmd_setflags(sys, state, args):
    if len(args) < 2:
        yield from _emit(sys, state, "usage: setflags <jobname> <flag1> [...]")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    try:
        set_mask, clear_mask = mflags.flags_from_names(args[1:])
    except ValueError as err:
        yield from _emit(sys, state, str(err))
        return
    # "the set of active flags is the union of the two groups" --
    # resets must be explicit.
    job.flags = (job.flags | set_mask) & ~clear_mask
    _update_flag_order(job, args[1:])
    yield from _emit(
        sys, state, "new job flags = {0}".format(" ".join(job.flag_order))
    )
    for record in job.processes:
        if record.state == states.KILLED:
            continue
        reply_type, body = yield from _rpc(
            sys,
            state,
            record.machine,
            protocol.SETFLAGS_REQ,
            pid=record.pid,
            flags=job.flags,
        )
        if reply_type == protocol.SETFLAGS_REPLY and protocol.is_ok(body):
            record.flags = job.flags
            yield from _emit(
                sys, state, "Process '{0}' : Flags set".format(record.procname)
            )
        else:
            yield from _emit(
                sys,
                state,
                "Process '{0}' : flags not set: {1}".format(
                    record.procname, body.get("status")
                ),
            )


def _update_flag_order(job, names):
    for raw in names:
        name = raw.lower()
        if name.startswith("-"):
            name = name[1:]
            if name == "all":
                job.flag_order = []
            elif name in job.flag_order:
                job.flag_order.remove(name)
        else:
            if name not in job.flag_order and name != "immediate":
                job.flag_order.append(name)


def cmd_startjob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: startjob <jobname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    for record in job.processes:
        if states.startable(record.state):
            reply_type, body = yield from _rpc(
                sys,
                state,
                record.machine,
                protocol.SIGNAL_REQ,
                pid=record.pid,
                sig=defs.SIGCONT,
            )
            if reply_type == protocol.SIGNAL_REPLY and protocol.is_ok(body):
                record.state = states.RUNNING
                yield from _emit(sys, state, "'{0}' started.".format(record.procname))
            else:
                yield from _emit(
                    sys,
                    state,
                    "'{0}' not started: {1}".format(
                        record.procname, body.get("status")
                    ),
                )
        else:
            yield from _emit(
                sys,
                state,
                "'{0}' cannot be started: it is {1}.".format(
                    record.procname, record.state
                ),
            )


def cmd_stopjob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: stopjob <jobname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    for record in job.processes:
        if states.stoppable(record.state):
            reply_type, body = yield from _rpc(
                sys,
                state,
                record.machine,
                protocol.SIGNAL_REQ,
                pid=record.pid,
                sig=defs.SIGSTOP,
            )
            if reply_type == protocol.SIGNAL_REPLY and protocol.is_ok(body):
                record.state = states.STOPPED
                yield from _emit(sys, state, "'{0}' stopped.".format(record.procname))
            else:
                yield from _emit(
                    sys,
                    state,
                    "'{0}' not stopped: {1}".format(
                        record.procname, body.get("status")
                    ),
                )
        elif record.state in (states.KILLED, states.ACQUIRED):
            continue  # "Processes that are killed or acquired are ignored."


def _remove_record(sys, state, job, record):
    """Shared by removejob/removeprocess: stopped processes are killed
    (Figure 4.2's stopped->killed edge); acquired processes only lose
    their meter connection."""
    if record.state == states.STOPPED:
        yield from _rpc(
            sys,
            state,
            record.machine,
            protocol.SIGNAL_REQ,
            pid=record.pid,
            sig=defs.SIGKILL,
        )
        record.state = states.KILLED
    elif record.state == states.ACQUIRED:
        yield from _rpc(
            sys, state, record.machine, protocol.UNMETER_REQ, pid=record.pid
        )
    yield from _emit(sys, state, "'{0}' removed".format(record.procname))


def cmd_removejob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: removejob <jobname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    blockers = [
        record for record in job.processes if not states.removable(record.state)
    ]
    if blockers:
        yield from _emit(
            sys,
            state,
            "job '{0}' not removed: process '{1}' is {2}".format(
                job.name, blockers[0].procname, blockers[0].state
            ),
        )
        return
    for record in job.processes:
        yield from _remove_record(sys, state, job, record)
    del state.jobs[job.name]


def cmd_removeprocess(sys, state, args):
    if len(args) != 2:
        yield from _emit(sys, state, "usage: removeprocess <jobname> <procname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    record = job.find_process(args[1])
    if record is None:
        yield from _emit(
            sys, state, "no process '{0}' in job '{1}'".format(args[1], args[0])
        )
        return
    if not states.removable(record.state):
        yield from _emit(
            sys,
            state,
            "process '{0}' not removed: it is {1}".format(
                record.procname, record.state
            ),
        )
        return
    yield from _remove_record(sys, state, job, record)
    job.processes.remove(record)


def cmd_jobs(sys, state, args):
    if not args:
        if not state.jobs:
            yield from _emit(sys, state, "no jobs")
            return
        for job in sorted(state.jobs.values(), key=lambda j: j.number):
            yield from _emit(
                sys,
                state,
                "{0}: {1} (filter {2})".format(job.number, job.name, job.filtername),
            )
        return
    for jobname in args:
        job = state.jobs.get(jobname)
        if job is None:
            yield from _emit(sys, state, "no job '{0}'".format(jobname))
            continue
        yield from _emit(sys, state, "job '{0}':".format(job.name))
        for record in job.processes:
            flag_names = " ".join(mflags.names_from_flags(record.flags)) or "none"
            yield from _emit(
                sys,
                state,
                "  {0} {1} '{2}' on {3} flags: {4}".format(
                    record.pid,
                    record.state,
                    record.procname,
                    record.machine,
                    flag_names,
                ),
            )
        degraded = sorted(
            {
                record.machine
                for record in job.processes
                if state.daemon_health.get(record.machine, {}).get("degraded")
            }
        )
        if degraded:
            yield from _emit(
                sys,
                state,
                "  degraded machines (meterdaemon not responding): "
                + " ".join(degraded),
            )


def cmd_getlog(sys, state, args):
    if len(args) != 2:
        yield from _emit(sys, state, "usage: getlog <filtername> <destfile>")
        return
    info = state.filters.get(args[0])
    if info is None:
        yield from _emit(sys, state, "no filter '{0}'".format(args[0]))
        return
    reply_type, body = yield from _rpc(
        sys, state, info.machine, protocol.GETLOG_REQ, path=info.log_path
    )
    if reply_type != protocol.GETLOG_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "getlog failed: {0}".format(body.get("status"))
        )
        return
    yield from guestlib.write_text(sys, args[1], body["content"])


def _find_job_process(sys, state, jobname, procname):
    job = state.jobs.get(jobname)
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(jobname))
        return None
    record = job.find_process(procname)
    if record is None:
        yield from _emit(
            sys, state, "no process '{0}' in job '{1}'".format(procname, jobname)
        )
        return None
    if record.state in (states.KILLED, states.ACQUIRED):
        yield from _emit(
            sys,
            state,
            "process '{0}' is {1}: no I/O path".format(procname, record.state),
        )
        return None
    return record


def cmd_input(sys, state, args):
    """Send a line to a process' standard input through its daemon's
    I/O gateway (the reverse path of Section 3.5.2)."""
    if len(args) < 3:
        yield from _emit(sys, state, "usage: input <jobname> <procname> <word>...")
        return
    record = yield from _find_job_process(sys, state, args[0], args[1])
    if record is None:
        return
    reply_type, body = yield from _rpc(
        sys,
        state,
        record.machine,
        protocol.STDIN_REQ,
        pid=record.pid,
        data=" ".join(args[2:]) + "\n",
    )
    if reply_type != protocol.STDIN_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "input not delivered: {0}".format(body.get("status"))
        )


def cmd_stdinfile(sys, state, args):
    """Redirect a file into a process' standard input (Section 3.5.2:
    the file is copied to the process' machine and opened by its
    meterdaemon)."""
    if len(args) != 3:
        yield from _emit(
            sys, state, "usage: stdinfile <jobname> <procname> <filename>"
        )
        return
    record = yield from _find_job_process(sys, state, args[0], args[1])
    if record is None:
        return
    filename = args[2]
    if record.machine != state.hostname:
        try:
            yield sys.rcp(state.hostname, filename, record.machine, filename)
        except SyscallError as err:
            yield from _emit(
                sys,
                state,
                "cannot copy '{0}' to {1} ({2})".format(
                    filename, record.machine, errno_name(err.errno)
                ),
            )
            return
    reply_type, body = yield from _rpc(
        sys,
        state,
        record.machine,
        protocol.STDIN_REQ,
        pid=record.pid,
        path=filename,
    )
    if reply_type != protocol.STDIN_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "stdin not redirected: {0}".format(body.get("status"))
        )


def cmd_source(sys, state, args):
    if len(args) != 1:
        yield from _emit(sys, state, "usage: source <filename>")
        return
    if len(state.input_stack) >= MAX_SOURCE_DEPTH:
        yield from _emit(sys, state, "source nesting too deep (max 16)")
        return
    try:
        fd = yield sys.open(args[0], "r")
    except SyscallError as err:
        yield from _emit(
            sys, state, "cannot source '{0}': {1}".format(args[0], errno_name(err.errno))
        )
        return
    state.input_stack.append(_InputSource(fd, is_tty=False))


def cmd_sink(sys, state, args):
    if state.sink_fd is not None:
        yield sys.close(state.sink_fd)
        state.sink_fd = None
    if args:
        state.sink_fd = yield sys.open(args[0], "w")


def cmd_die(sys, state, args):
    if state.active_count() > 0 and not state.die_warned:
        state.die_warned = True
        yield from _emit(
            sys,
            state,
            "there are still active processes; repeat die to exit anyway",
        )
        return
    # "Upon exit, all executing filter processes are removed."
    for name in list(state.filter_order):
        info = state.filters[name]
        yield from _rpc(
            sys,
            state,
            info.machine,
            protocol.SIGNAL_REQ,
            pid=info.pid,
            sig=defs.SIGKILL,
        )
    state.dead = True


_COMMANDS = {
    "help": cmd_help,
    "filter": cmd_filter,
    "newjob": cmd_newjob,
    "addprocess": cmd_addprocess,
    "add": cmd_addprocess,
    "acquire": cmd_acquire,
    "setflags": cmd_setflags,
    "startjob": cmd_startjob,
    "stopjob": cmd_stopjob,
    "removejob": cmd_removejob,
    "rmjob": cmd_removejob,
    "removeprocess": cmd_removeprocess,
    "jobs": cmd_jobs,
    "getlog": cmd_getlog,
    "source": cmd_source,
    "sink": cmd_sink,
    "input": cmd_input,
    "stdinfile": cmd_stdinfile,
    "die": cmd_die,
    "exit": cmd_die,
    "bye": cmd_die,
}
