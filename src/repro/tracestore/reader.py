"""StoreReader: streaming, predicate-pushdown access to a trace store.

Reading never materializes a whole store: :meth:`StoreReader.scan` is
a generator that walks segments in order, consults each sealed
segment's footer first, and decodes only the segments that can contain
a matching record.  Unsealed tail segments (the writer crashed, or the
filter is still running) are recovered by scanning their
self-delimiting frames.

:func:`merge_scan` merges several filters' stores into one stream
ordered by (header cpuTime, machine) -- the same heuristic interleaving
as :meth:`Trace.merge`, but computed with a k-way heap merge over lazy
streams instead of sorting a materialized list.
"""

import heapq

from repro.metering.messages import MessageCodec, is_batch_marker
from repro.tracestore import format as sformat
from repro.tracestore.writer import SEGMENT_SUFFIX


class Segment:
    """One segment file, parsed lazily."""

    def __init__(self, path, data):
        self.path = path
        self.data = bytes(data)
        sformat.parse_segment_header(self.data)
        self.footer = sformat.parse_footer(self.data)
        self.sealed = self.footer is not None

    def data_bounds(self):
        if self.sealed:
            return self.footer["data_start"], self.footer["data_end"]
        return sformat.SEGMENT_HEADER_BYTES, len(self.data)

    def data_bytes(self):
        start, end = self.data_bounds()
        return end - start

    def iter_frames(self):
        start, end = self.data_bounds()
        return sformat.iter_frames(self.data, start, end)

    def committed_frames(self):
        """Frames whose batch the writing filter actually committed.

        Sealed segments seal on a batch boundary, so every frame
        counts.  An unsealed tail that contains batch markers may end
        with frames of a batch whose trailing marker never reached the
        medium (the filter died mid-commit); those frames are
        uncommitted -- a relaunched filter re-appends the whole batch
        in a later segment, so reading them would double-count.
        Marker-free unsealed segments (packed stores, markerless
        senders) are taken whole.
        """
        if self.sealed:
            return self.iter_frames()
        frames = list(self.iter_frames())
        last_marker = None
        for index, (__, __mask, payload) in enumerate(frames):
            if is_batch_marker(payload):
                last_marker = index
        if last_marker is None:
            return iter(frames)
        return iter(frames[: last_marker + 1])

    def host_names(self):
        if not self.sealed:
            return {}
        return {
            int(host_id): name
            for host_id, name in self.footer.get("hosts", {}).items()
        }


class ScanStats:
    """What one scan actually touched (the pushdown evidence)."""

    def __init__(self):
        self.segments_total = 0
        self.segments_scanned = 0
        self.segments_skipped = 0
        self.segments_recovered = 0
        self.bytes_scanned = 0
        self.records_decoded = 0
        self.records_yielded = 0

    def __repr__(self):
        return (
            "ScanStats(scanned={0}/{1}, skipped={2}, recovered={3}, "
            "bytes={4}, decoded={5}, yielded={6})".format(
                self.segments_scanned,
                self.segments_total,
                self.segments_skipped,
                self.segments_recovered,
                self.bytes_scanned,
                self.records_decoded,
                self.records_yielded,
            )
        )


class StoreReader:
    """Read one store (one filter's segment family)."""

    def __init__(self, segments, host_names=None):
        self.segments = sorted(segments, key=lambda seg: seg.path)
        names = {}
        for segment in self.segments:
            names.update(segment.host_names())
        names.update(host_names or {})
        self.codec = MessageCodec(names)
        #: Stats of the most recent scan (updated as the scan advances).
        self.last_stats = ScanStats()

    # -- construction ---------------------------------------------------

    @classmethod
    def from_bytes(cls, mapping, host_names=None):
        """From a dict path -> segment bytes."""
        return cls(
            [Segment(path, data) for path, data in mapping.items()],
            host_names=host_names,
        )

    @classmethod
    def from_fs(cls, fs, base, host_names=None):
        """From a simulated machine filesystem, host-side."""
        prefix = base + SEGMENT_SUFFIX
        segments = [
            Segment(path, fs.node(path).data)
            for path in fs.paths()
            if path.startswith(prefix)
        ]
        if not segments:
            raise FileNotFoundError(prefix + "*")
        return cls(segments, host_names=host_names)

    @classmethod
    def from_files(cls, base, host_names=None):
        """From real files (the CLI): ``<base>.seg*`` siblings."""
        import glob

        paths = sorted(glob.glob(base + SEGMENT_SUFFIX + "*"))
        if not paths:
            raise FileNotFoundError(base + SEGMENT_SUFFIX + "*")
        segments = []
        for path in paths:
            with open(path, "rb") as handle:
                segments.append(Segment(path, handle.read()))
        return cls(segments, host_names=host_names)

    # -- scanning -------------------------------------------------------

    def footers(self):
        """(path, footer-or-None) per segment, for inspect."""
        return [(segment.path, segment.footer) for segment in self.segments]

    def record_count(self):
        """Total records, from footers where sealed, scans otherwise."""
        total = 0
        for segment in self.segments:
            if segment.sealed:
                total += segment.footer["records"]
            else:
                total += sum(
                    1
                    for __, __mask, payload in segment.committed_frames()
                    if not is_batch_marker(payload)
                )
        return total

    def scan(self, machines=None, pids=None, events=None, t_min=None,
             t_max=None):
        """Stream matching records as decoded dicts (the exact shape
        ``parse_trace`` yields from a text log).

        Pushdown: a sealed segment whose footer proves no record can
        match is skipped without touching its data region; only its
        footer/trailer bytes are read.  The residual predicate is then
        applied per record, and masked (discarded) fields are dropped.
        """
        stats = self.last_stats = ScanStats()
        stats.segments_total = len(self.segments)
        machine_set = set(machines) if machines is not None else None
        pid_set = set(pids) if pids is not None else None
        event_set = set(events) if events is not None else None
        for segment in self.segments:
            if segment.sealed:
                if not sformat.footer_matches(
                    segment.footer,
                    machines=machine_set,
                    pids=pid_set,
                    events=event_set,
                    t_min=t_min,
                    t_max=t_max,
                ):
                    stats.segments_skipped += 1
                    continue
            else:
                stats.segments_recovered += 1
            stats.segments_scanned += 1
            stats.bytes_scanned += segment.data_bytes()
            for __, mask, payload in segment.committed_frames():
                if is_batch_marker(payload):
                    continue  # delivery-protocol control frame
                try:
                    record = self.codec.decode(payload)
                except ValueError:
                    continue  # damaged frame body: skip, keep scanning
                stats.records_decoded += 1
                if event_set is not None and record["event"] not in event_set:
                    continue
                if machine_set is not None and record["machine"] not in machine_set:
                    continue
                if pid_set is not None:
                    if (record["machine"], record.get("pid")) not in pid_set:
                        continue
                time = record["cpuTime"]
                if t_min is not None and time < t_min:
                    continue
                if t_max is not None and time > t_max:
                    continue
                if mask:
                    for name in sformat.masked_fields(record["event"], mask):
                        record.pop(name, None)
                stats.records_yielded += 1
                yield record

    def records(self, **predicates):
        """Materialize a scan (convenience for small selections)."""
        return list(self.scan(**predicates))


def merge_scan(readers, **predicates):
    """K-way merge of several stores' scans by (cpuTime, machine).

    Each store's stream is consumed lazily; ordering across machines is
    the same local-clock heuristic as :meth:`Trace.merge` (Section 4.1:
    causal questions belong to happens-before, not to this order).
    """
    streams = [reader.scan(**predicates) for reader in readers]
    return heapq.merge(
        *streams,
        key=lambda record: (record.get("cpuTime", 0), record.get("machine", 0))
    )
