"""Per-machine clocks with offset and drift.

The paper (Section 1.1) stresses that a distributed monitor cannot rely
on a universal time base: clocks can be kept roughly synchronized (it
cites TEMPO, Gusella & Zatti 83) but never perfectly.  Meter message
headers therefore carry the *local* clock (``cpuTime`` field, "Local
clock" in Figure 4.1), and global orderings must be deduced from message
causality (Section 4.1).

We model each machine's clock as a linear function of simulated global
time:

    local(t) = offset + rate * t

``offset`` is the initial skew in milliseconds; ``rate`` is 1.0 plus a
drift expressed in parts-per-million.  Both default to an ideal clock so
tests that do not care about skew see local == global.
"""


class MachineClock:
    """A drifting local clock for one machine.

    All times are in milliseconds of simulated time.
    """

    def __init__(self, offset_ms=0.0, drift_ppm=0.0):
        self.offset_ms = float(offset_ms)
        self.drift_ppm = float(drift_ppm)
        self.rate = 1.0 + self.drift_ppm / 1e6

    def local_time(self, global_ms):
        """Local wall-clock reading at simulated global time ``global_ms``."""
        return self.offset_ms + self.rate * global_ms

    def global_time(self, local_ms):
        """Invert :meth:`local_time` (used by analysis, never by guests)."""
        return (local_ms - self.offset_ms) / self.rate

    def __repr__(self):
        return "MachineClock(offset_ms={0!r}, drift_ppm={1!r})".format(
            self.offset_ms, self.drift_ppm
        )
