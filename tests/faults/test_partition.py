"""Network partitions: packets stop crossing the cut, live stream
connections across it break with ECONNRESET/EPIPE, and healing lets
new connections through while broken ones stay broken."""

import pytest

from repro.core.cluster import Cluster
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from repro.net.hosts import HostTable
from repro.net.network import Network, NetworkParams
from repro.sim.simulator import Simulator
from tests.conftest import run_guests


def _net():
    sim = Simulator(seed=1)
    table = HostTable()
    return sim, Network(sim, NetworkParams(jitter_ms=0.0)), table


def test_partition_blocks_datagrams_across_groups():
    sim, net, table = _net()
    a, b, c = table.add("a"), table.add("b"), table.add("c")
    net.set_partition([["a", "b"], ["c"]])
    delivered = []
    assert net.send_datagram(a, b, 10, lambda: delivered.append("ab"))
    assert not net.send_datagram(a, c, 10, lambda: delivered.append("ac"))
    assert not net.send_datagram(c, b, 10, lambda: delivered.append("cb"))
    sim.run()
    assert delivered == ["ab"]
    assert net.datagrams_dropped == 2


def test_unlisted_hosts_share_the_implicit_group():
    sim, net, table = _net()
    a, b, c = table.add("a"), table.add("b"), table.add("c")
    net.set_partition([["a"]])
    delivered = []
    assert net.send_datagram(b, c, 10, lambda: delivered.append("bc"))
    assert not net.send_datagram(a, b, 10, lambda: delivered.append("ab"))
    sim.run()
    assert delivered == ["bc"]


def test_heal_restores_reachability():
    sim, net, table = _net()
    a, b = table.add("a"), table.add("b")
    net.set_partition([["a"], ["b"]])
    assert not net.reachable(a, b)
    net.heal_partition()
    assert net.reachable(a, b)


def test_break_channel_destroys_in_flight_packets():
    sim, net, table = _net()
    a, b = table.add("a"), table.add("b")
    delivered = []
    net.send_reliable("ch", a, b, 10, lambda: delivered.append(1))
    net.send_reliable("ch", a, b, 10, lambda: delivered.append(2))
    assert net.break_channel("ch") == 2
    sim.run()
    assert delivered == []
    assert net.reliable_packets_dropped == 2


def test_severed_channels_reports_cross_cut_channels_only():
    sim, net, table = _net()
    a, b, c = table.add("a"), table.add("b"), table.add("c")
    net.send_reliable("ab", a, b, 10, lambda: None)
    net.send_reliable("ac", a, c, 10, lambda: None)
    net.set_partition([["a", "b"], ["c"]])
    assert net.severed_channels() == ["ac"]


def _chatty_server(port, outcomes):
    """Accept one connection, then echo until the peer goes away."""

    def main(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", port))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        try:
            while True:
                data = yield sys.read(conn, 4096)
                if not data:
                    outcomes.append("eof")
                    break
                yield sys.write(conn, data)
        except SyscallError as err:
            outcomes.append(err.errno)
        yield sys.exit(0)

    return main


def _chatty_client(server, port, outcomes, gap_ms=10.0):
    """Ping the server forever; record how the connection dies."""

    def main(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys, defs.AF_INET, defs.SOCK_STREAM, (server, port)
        )
        try:
            while True:
                yield sys.write(fd, b"ping")
                yield sys.read(fd, 4096)
                yield sys.sleep(gap_ms)
        except SyscallError as err:
            outcomes.append(err.errno)
        yield sys.exit(0)

    return main


def test_partition_resets_live_stream_connections():
    cluster = Cluster(seed=7)
    server_outcomes, client_outcomes = [], []
    plan = FaultPlan().partition(60.0, [["red"], ["green", "blue", "yellow"]])
    FaultInjector(cluster, plan).arm()
    run_guests(
        cluster,
        ("red", _chatty_server(5000, server_outcomes), ()),
        ("green", _chatty_client("red", 5000, client_outcomes), ()),
    )
    # Both endpoints saw a hard break, not a clean EOF.
    assert client_outcomes in ([errno.ECONNRESET], [errno.EPIPE])
    assert server_outcomes in ([errno.ECONNRESET], [errno.EPIPE])


def test_connect_across_partition_times_out():
    cluster = Cluster(seed=7)
    outcomes = []
    cluster.network.set_partition([["red"], ["green", "blue", "yellow"]])

    def client(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, ("red", 5000), 100.0)
            outcomes.append("connected")
        except SyscallError as err:
            outcomes.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("green", client, ()))
    assert outcomes == [errno.ETIMEDOUT]


def test_new_connections_succeed_after_heal():
    cluster = Cluster(seed=7)
    outcomes = []
    plan = (
        FaultPlan()
        .partition(0.0, [["red"], ["green", "blue", "yellow"]])
        .heal(200.0)
    )
    FaultInjector(cluster, plan).arm()

    def server(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", 5000))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        data = yield sys.read(conn, 4096)
        yield sys.write(conn, data)
        yield sys.exit(0)

    def client(sys, argv):
        from repro import guestlib

        fd = yield from guestlib.connect_retry(
            sys,
            defs.AF_INET,
            defs.SOCK_STREAM,
            ("red", 5000),
            timeout_ms=50.0,
        )
        yield sys.write(fd, b"hello")
        outcomes.append((yield sys.read(fd, 4096)))
        yield sys.exit(0)

    run_guests(cluster, ("red", server, ()), ("green", client, ()))
    assert outcomes == [b"hello"]


def test_loss_burst_is_bounded_in_time():
    cluster = Cluster(seed=7)
    net = cluster.network
    plan = FaultPlan().loss_burst(10.0, duration_ms=50.0, loss=0.75)
    FaultInjector(cluster, plan).arm()
    cluster.run(until_ms=30.0)
    assert net.extra_loss == pytest.approx(0.75)
    cluster.run(until_ms=100.0)
    assert net.extra_loss == 0.0


def test_latency_spike_slows_remote_traffic_then_recovers():
    cluster = Cluster(seed=7)
    net = cluster.network
    plan = FaultPlan().latency_spike(10.0, duration_ms=50.0, extra_ms=40.0)
    FaultInjector(cluster, plan).arm()
    cluster.run(until_ms=30.0)
    assert net.extra_latency_ms == pytest.approx(40.0)
    cluster.run(until_ms=100.0)
    assert net.extra_latency_ms == 0.0
