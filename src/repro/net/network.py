"""The internetwork: packet delivery between machines.

Two delivery services (paper Section 3.1):

- :meth:`Network.send_datagram` -- may drop packets, may reorder (each
  datagram gets independent jitter, so a later send can overtake an
  earlier one);
- :meth:`Network.send_reliable` -- per-channel FIFO delivery; never
  drops, never reorders *while the channel is intact*.  The kernel's
  stream sockets and the meter connections ride on this, which is why
  "message delivery is guaranteed and messages arrive in the same order
  as they were sent".

Local (same-machine) traffic bypasses loss entirely: "Such links are
reliable when used within a single machine" (Section 3.5.2).

Failure model (see DESIGN.md, "Failure model and fault injection"):
the internetwork can *partition* into groups that cannot exchange
packets, individual hosts can go *down* (machine crash), and links can
be *degraded* (extra datagram loss, extra latency).  Datagrams crossing
a severed path vanish silently, as UDP does.  Reliable channels are
FIFO and lossless only between mutually reachable, live hosts: severing
a channel (:meth:`break_channel`) cancels its in-flight packets -- the
bytes are gone, exactly like a TCP connection reset -- and the kernel
layer surfaces ``ECONNRESET``/``EPIPE`` to the endpoints.
"""

import itertools


class NetworkParams:
    """Tunable characteristics of the internetwork.

    Times in milliseconds.  Defaults roughly evoke a 1984 3Mb/10Mb
    Ethernet: ~1ms base latency, mild jitter, small datagram loss.
    """

    def __init__(
        self,
        base_latency_ms=1.0,
        jitter_ms=0.5,
        local_latency_ms=0.05,
        datagram_loss=0.0,
        bandwidth_bytes_per_ms=1250.0,
    ):
        self.base_latency_ms = float(base_latency_ms)
        self.jitter_ms = float(jitter_ms)
        self.local_latency_ms = float(local_latency_ms)
        self.datagram_loss = float(datagram_loss)
        self.bandwidth_bytes_per_ms = float(bandwidth_bytes_per_ms)


class Network:
    """Delivers packets between machines via the shared simulator."""

    def __init__(self, simulator, params=None):
        self.sim = simulator
        self.params = params or NetworkParams()
        # Cluster-scoped id wells for socket endpoints and socketpair
        # names.  Per-network (not module-global) state keeps runs
        # byte-identical even when several clusters share a process
        # (the determinism requirement of DESIGN.md Section 5).
        self._endpoint_ids = itertools.count(1)
        self._pair_ids = itertools.count(1)
        #: channel key -> earliest time the next packet may arrive,
        #: used to keep reliable channels FIFO.
        self._channel_clearance = {}
        #: channel key -> (src Host, dst Host) of the last send, so a
        #: partition or crash can identify the channels it severs.
        self._channel_hosts = {}
        #: channel key -> set of in-flight delivery events, cancellable
        #: by break_channel (a severed channel drops its packets).
        self._channel_pending = {}
        #: host name -> partition group index; None = no partition.
        #: Hosts absent from every group share one implicit group.
        self._partition = None
        #: Names of hosts that are down (crashed machines).
        self._down = set()
        #: Link degradation (fault injection): extra datagram loss
        #: probability and extra one-way latency on remote paths.
        self.extra_loss = 0.0
        self.extra_latency_ms = 0.0
        self.datagrams_sent = 0
        self.datagrams_dropped = 0
        self.reliable_packets_sent = 0
        self.reliable_packets_dropped = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Id allocation
    # ------------------------------------------------------------------

    def next_endpoint_id(self):
        """Cluster-unique id for one end of a stream connection."""
        return next(self._endpoint_ids)

    def next_pair_id(self):
        """Cluster-unique id for socketpair names (Section 4.1:
        "internally generated unique name")."""
        return next(self._pair_ids)

    # ------------------------------------------------------------------
    # Topology faults
    # ------------------------------------------------------------------

    def set_partition(self, groups):
        """Partition the internetwork: hosts may exchange packets only
        within their group.  ``groups`` is an iterable of iterables of
        host names; hosts named in no group share one implicit group.
        """
        mapping = {}
        for index, group in enumerate(groups):
            for name in group:
                mapping[str(name)] = index
        self._partition = mapping

    def heal_partition(self):
        """Rejoin all partition groups (broken channels stay broken)."""
        self._partition = None

    @property
    def partition_active(self):
        """True while a partition is in force (heal clears it)."""
        return self._partition is not None

    def set_host_down(self, name):
        """Mark a host unreachable (its machine crashed)."""
        self._down.add(str(name))

    def set_host_up(self, name):
        """Mark a host reachable again (its machine rebooted)."""
        self._down.discard(str(name))

    def reachable(self, src_host, dst_host):
        """Whether a packet from ``src_host`` can reach ``dst_host``."""
        if src_host.name in self._down or dst_host.name in self._down:
            return False
        if src_host is dst_host:
            return True
        if self._partition is not None:
            if self._partition.get(src_host.name, -1) != self._partition.get(
                dst_host.name, -1
            ):
                return False
        return True

    # ------------------------------------------------------------------

    def _transit_time(self, src_host, dst_host, size_bytes, jittered):
        params = self.params
        if src_host is dst_host:
            latency = params.local_latency_ms
        else:
            latency = params.base_latency_ms + self.extra_latency_ms
            if jittered and params.jitter_ms > 0:
                latency += self.sim.rng.uniform(0.0, params.jitter_ms)
        if params.bandwidth_bytes_per_ms > 0:
            latency += size_bytes / params.bandwidth_bytes_per_ms
        return latency

    # ------------------------------------------------------------------

    def send_datagram(self, src_host, dst_host, size_bytes, deliver):
        """Best-effort delivery; ``deliver()`` runs on arrival (if any).

        Returns True if the datagram was sent (False means it was
        dropped in transit; the sender is never told, as in UDP).
        """
        self.datagrams_sent += 1
        self.bytes_sent += size_bytes
        if not self.reachable(src_host, dst_host):
            self.datagrams_dropped += 1
            return False
        remote = src_host is not dst_host
        loss = self.params.datagram_loss + (self.extra_loss if remote else 0.0)
        if remote and loss > 0:
            if self.sim.rng.random() < loss:
                self.datagrams_dropped += 1
                return False
        delay = self._transit_time(src_host, dst_host, size_bytes, jittered=True)
        self.sim.schedule(delay, deliver)
        return True

    def send_reliable(self, channel, src_host, dst_host, size_bytes, deliver):
        """Reliable FIFO delivery on ``channel`` (any hashable key).

        Packets on the same channel arrive in send order even when
        jitter would have reordered them; nothing is dropped while the
        path is intact.  Across a partition or to a down host the packet
        is dropped (returns False); the channel is dead and the kernel
        layer is responsible for surfacing the break to the endpoints.
        """
        self.reliable_packets_sent += 1
        self.bytes_sent += size_bytes
        if not self.reachable(src_host, dst_host):
            self.reliable_packets_dropped += 1
            return False
        delay = self._transit_time(src_host, dst_host, size_bytes, jittered=True)
        arrival = self.sim.now + delay
        clearance = self._channel_clearance.get(channel, 0.0)
        arrival = max(arrival, clearance)
        # Strictly increasing arrivals preserve FIFO under equal times too.
        self._channel_clearance[channel] = arrival + 1e-9
        self._channel_hosts[channel] = (src_host, dst_host)

        event_box = []

        def deliver_and_forget():
            pending = self._channel_pending.get(channel)
            if pending is not None:
                pending.discard(event_box[0])
            deliver()

        event_box.append(self.sim.schedule_at(arrival, deliver_and_forget))
        self._channel_pending.setdefault(channel, set()).add(event_box[0])
        return True

    def close_channel(self, channel):
        """Forget FIFO state for a finished connection.

        Graceful: packets already in flight still arrive.  Called from
        kernel socket teardown so long runs do not accumulate clearance
        state for dead connections.
        """
        self._channel_clearance.pop(channel, None)
        self._channel_hosts.pop(channel, None)
        self._channel_pending.pop(channel, None)

    def break_channel(self, channel):
        """Sever a reliable channel: its in-flight packets are dropped.

        Violent: models the loss of a transport connection when the
        path dies.  Returns the number of in-flight packets destroyed.
        """
        pending = self._channel_pending.pop(channel, ())
        for event in pending:
            self.sim.cancel(event)
        self.reliable_packets_dropped += len(pending)
        self._channel_clearance.pop(channel, None)
        self._channel_hosts.pop(channel, None)
        return len(pending)

    def severed_channels(self):
        """Channels whose recorded endpoints can no longer reach each
        other (after a partition or crash); candidates for breaking."""
        return [
            channel
            for channel, (src_host, dst_host) in self._channel_hosts.items()
            if not self.reachable(src_host, dst_host)
        ]

    def break_channels_involving(self, host):
        """Sever every tracked channel that touches ``host``."""
        victims = [
            channel
            for channel, (src_host, dst_host) in self._channel_hosts.items()
            if src_host is host or dst_host is host
        ]
        for channel in victims:
            self.break_channel(channel)
        return victims
