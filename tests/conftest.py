"""Shared fixtures and guest-program helpers for the test suite."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs


@pytest.fixture
def cluster():
    """A fresh default cluster (red/green/blue/yellow, ideal clocks)."""
    return Cluster(seed=42)


@pytest.fixture
def machine(cluster):
    return cluster.machine("red")


@pytest.fixture
def session(cluster):
    """A running measurement system on the default cluster."""
    return MeasurementSession(cluster, control_machine="yellow")


def run_guests(cluster, *specs, max_events=1_000_000):
    """Spawn (machine, main, argv) guests and run all to completion.

    Returns the Proc objects in spec order.
    """
    procs = [
        cluster.spawn(machine_name, main, argv=argv)
        for machine_name, main, argv in specs
    ]
    cluster.run_until_exit(procs, max_events=max_events)
    return procs


def collector(results):
    """A guest factory: returns a main() that runs ``body`` and appends
    its return value to ``results`` (for asserting guest-side values).
    """

    def wrap(body):
        def main(sys, argv):
            value = yield from body(sys, argv)
            results.append(value)
            yield sys.exit(0)

        return main

    return wrap


def simple_stream_server(port=5000, reply_prefix=b"", count=None):
    """An accept-once echo server guest."""

    def main(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(fd, ("", port))
        yield sys.listen(fd, 5)
        conn, __ = yield sys.accept(fd)
        served = 0
        while count is None or served < count:
            data = yield sys.read(conn, 4096)
            if not data:
                break
            yield sys.write(conn, reply_prefix + data)
            served += 1
        yield sys.close(conn)
        yield sys.exit(0)

    return main
