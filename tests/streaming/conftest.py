"""Shared builders for the streaming-analysis tests."""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all

#: Every event kind the workloads below can produce -- so the stream
#: exercises clocks, stream matching, and datagram matching at once.
ALL_FLAGS = (
    "send receive receivecall socket dup destsocket fork accept connect termproc"
)


def build_session(seed=21, log_format="text", clock_skew=None):
    cluster = Cluster(seed=seed, clock_skew=clock_skew)
    session = MeasurementSession(
        cluster, control_machine="yellow", log_format=log_format
    )
    install_all(session)
    return session


def start_mixed_job(session, dgram_count=30, rounds=20):
    """One job mixing datagram and stream traffic across machines."""
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command(
        "addprocess j red dgramconsumer 6001 {0} 4000".format(dgram_count)
    )
    session.command(
        "addprocess j green dgramproducer red 6001 {0} 64 5".format(dgram_count)
    )
    session.command("addprocess j red pingpongserver 5100 {0}".format(rounds))
    session.command(
        "addprocess j blue pingpongclient red 5100 {0}".format(rounds)
    )
    session.command("setflags j " + ALL_FLAGS)
    session.command("startjob j")


def stats_digest(session, filtername="f1"):
    """The filter engine's live digest, via the controller command."""
    import json

    out = session.command("stats {0} digest".format(filtername))
    for line in out.splitlines():
        line = line.strip()
        if line.startswith("{"):
            return json.loads(line)
    raise AssertionError("no digest line in output:\n" + out)
