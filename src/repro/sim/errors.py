"""Exceptions raised by the simulation substrate."""


class SimulationError(Exception):
    """Base class for errors in the simulation machinery itself.

    Guest-visible errors (bad syscall arguments, EPERM, ...) are *not*
    SimulationErrors; they surface as :class:`repro.kernel.errno.SyscallError`
    inside the guest.  A SimulationError indicates a bug in the harness or
    a misuse of the simulator API.
    """


class SimulationDeadlock(SimulationError):
    """Raised when the event queue drains while processes are still blocked.

    This is the simulated analogue of a hung distributed program: every
    process is asleep in a syscall and no pending event can ever wake one.
    The message lists the blocked processes and what they are waiting for,
    which is exactly the kind of diagnosis the paper's monitor is built to
    support.
    """

    def __init__(self, blocked):
        self.blocked = list(blocked)
        detail = "; ".join(str(item) for item in self.blocked)
        super().__init__(
            "simulation deadlock: no runnable process and no pending "
            "events ({0})".format(detail or "no blocked processes")
        )
