"""Unit tests for <meterflags.h>."""

import pytest

from repro.metering import flags as mf


def test_event_flags_are_distinct_bits():
    values = [
        mf.METERSEND,
        mf.METERRECEIVECALL,
        mf.METERRECEIVE,
        mf.METERACCEPT,
        mf.METERCONNECT,
        mf.METERFORK,
        mf.METERSOCKET,
        mf.METERDUP,
        mf.METERDESTSOCKET,
        mf.METERTERMPROC,
    ]
    assert len(set(values)) == len(values)
    for a in values:
        assert bin(a).count("1") == 1


def test_m_all_covers_every_event_but_not_immediate():
    assert mf.M_ALL & mf.METERSEND
    assert mf.M_ALL & mf.METERTERMPROC
    assert not (mf.M_ALL & mf.M_IMMEDIATE)


def test_flags_from_names_sets():
    set_mask, clear_mask = mf.flags_from_names(["send", "receive"])
    assert set_mask == mf.METERSEND | mf.METERRECEIVE
    assert clear_mask == 0


def test_flags_from_names_resets_with_dash():
    set_mask, clear_mask = mf.flags_from_names(["-send"])
    assert set_mask == 0
    assert clear_mask == mf.METERSEND


def test_flags_all_and_minus_all():
    set_mask, __ = mf.flags_from_names(["all"])
    assert set_mask == mf.M_ALL
    __, clear_mask = mf.flags_from_names(["-all"])
    assert clear_mask == mf.M_ALL


def test_unknown_flag_raises():
    with pytest.raises(ValueError):
        mf.flags_from_names(["sendd"])


def test_case_insensitive():
    set_mask, __ = mf.flags_from_names(["SEND", "Receive"])
    assert set_mask == mf.METERSEND | mf.METERRECEIVE


def test_names_from_flags_round_trip():
    mask = mf.METERSEND | mf.METERACCEPT | mf.METERFORK
    names = mf.names_from_flags(mask)
    assert set(names) == {"send", "accept", "fork"}
    back, __ = mf.flags_from_names(names)
    assert back == mask


def test_flag_name_single_bit():
    assert mf.flag_name(mf.METERCONNECT) == "connect"
    assert mf.flag_name(mf.M_IMMEDIATE) == "immediate"


def test_special_values():
    assert mf.SELF == -1
    assert mf.NO_CHANGE == -1
    assert mf.NONE == 0
    assert mf.SOCK_NONE not in (0, -1)  # distinct from a real fd and NO_CHANGE
