"""Byte-level invariants of the segment format."""

import pytest

from repro.metering.messages import MessageCodec, record_fields
from repro.tracestore import format as sformat

HOSTS = {1: "red", 2: "green"}


def _send(codec, i=0, machine=1, cpu_time=100):
    return codec.encode(
        "send",
        machine=machine,
        cpu_time=cpu_time,
        proc_time=10,
        pid=42,
        pc=i,
        sock=3,
        msgLength=64,
        destNameLen=0,
        destName=None,
    )


def test_segment_header_round_trip():
    header = sformat.segment_header()
    assert len(header) == sformat.SEGMENT_HEADER_BYTES
    assert sformat.parse_segment_header(header) == sformat.FORMAT_VERSION


def test_segment_header_rejects_junk():
    with pytest.raises(ValueError):
        sformat.parse_segment_header(b"NOPE\x00\x01\x00\x00")
    with pytest.raises(ValueError):
        sformat.parse_segment_header(b"RT")


def test_frames_round_trip_including_empty_payload():
    payloads = [b"", b"x", b"y" * 300]
    data = b"".join(sformat.encode_frame(p, mask=i) for i, p in enumerate(payloads))
    out = list(sformat.iter_frames(data, 0, len(data)))
    assert [(mask, payload) for __, mask, payload in out] == [
        (0, b""), (1, b"x"), (2, b"y" * 300)
    ]


def test_torn_tail_frame_is_dropped_not_fatal():
    data = sformat.encode_frame(b"whole") + sformat.encode_frame(b"torn-off")[:-3]
    out = list(sformat.iter_frames(data, 0, len(data)))
    assert [payload for __, __, payload in out] == [b"whole"]


def test_footer_round_trip():
    codec = MessageCodec(HOSTS)
    stats = sformat.SegmentStats(HOSTS)
    offset = sformat.SEGMENT_HEADER_BYTES
    for i in range(5):
        raw = _send(codec, i, machine=1 + i % 2, cpu_time=50 + i)
        stats.add("send", 1 + i % 2, 42, 50 + i, offset)
        offset += len(sformat.encode_frame(raw))
    footer = stats.footer(sformat.SEGMENT_HEADER_BYTES, offset)
    blob = sformat.encode_footer(footer)
    data = sformat.segment_header() + b"\x00" * 64 + blob
    parsed = sformat.parse_footer(data)
    assert parsed == footer
    assert parsed["records"] == 5
    assert parsed["t_min"] == 50 and parsed["t_max"] == 54
    assert parsed["machines"] == {"1": 3, "2": 2}
    assert parsed["pids"] == {"1:42": 3, "2:42": 2}
    assert parsed["hosts"] == {"1": "red", "2": "green"}


def test_corrupt_footer_reads_as_unsealed():
    stats = sformat.SegmentStats()
    stats.add("send", 1, 42, 10, 8)
    blob = sformat.encode_footer(stats.footer(8, 40))
    data = bytearray(sformat.segment_header() + b"\x00" * 32 + blob)
    data[-20] ^= 0xFF  # flip a footer byte: crc must catch it
    assert sformat.parse_footer(bytes(data)) is None
    assert sformat.parse_footer(b"") is None
    assert sformat.parse_footer(sformat.segment_header()) is None


def test_footer_matches_pushdown_predicates():
    stats = sformat.SegmentStats()
    stats.add("send", 1, 42, 100, 8)
    stats.add("receive", 2, 7, 200, 60)
    footer = stats.footer(8, 120)
    assert sformat.footer_matches(footer)
    assert sformat.footer_matches(footer, machines=[1])
    assert not sformat.footer_matches(footer, machines=[3])
    assert sformat.footer_matches(footer, events=["receive"])
    assert not sformat.footer_matches(footer, events=["fork"])
    assert sformat.footer_matches(footer, pids=[(2, 7)])
    assert not sformat.footer_matches(footer, pids=[(1, 7)])
    assert sformat.footer_matches(footer, t_min=150, t_max=250)
    assert not sformat.footer_matches(footer, t_min=201)
    assert not sformat.footer_matches(footer, t_max=99)


def test_discard_mask_round_trip():
    fields = record_fields("send")
    mask = sformat.discard_mask("send", {"pc", "destName"})
    assert sformat.masked_fields("send", mask) == ["pc", "destName"]
    assert sformat.masked_fields("send", 0) == []
    assert fields.index("pc") in [i for i in range(32) if mask & (1 << i)]


def test_zero_masked_bytes_zeroes_only_masked_fields():
    codec = MessageCodec(HOSTS)
    raw = _send(codec, i=9, cpu_time=77)
    mask = sformat.discard_mask("send", {"pc", "cpuTime"})
    zeroed = sformat.zero_masked_bytes(raw, "send", mask)
    record = codec.decode(zeroed)
    assert record["pc"] == 0 and record["cpuTime"] == 0
    # Unmasked fields survive untouched.
    assert record["pid"] == 42 and record["msgLength"] == 64
    assert record["traceType"] == codec.decode(raw)["traceType"]
    assert len(zeroed) == len(raw)
    # size and traceType are never zeroed, even if named.
    keep = sformat.zero_masked_bytes(
        raw, "send", sformat.discard_mask("send", {"size", "traceType"})
    )
    assert codec.decode(keep)["size"] == record["size"]
