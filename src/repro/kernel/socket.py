"""Socket objects: endpoints of communication (paper Section 3.1).

Implements both 4.2BSD socket flavours the paper monitors:

- **datagram** sockets: connectionless, unreliable, unordered; each
  read consumes one whole message;
- **stream** sockets: connection-based, reliable, ordered byte streams
  with flow control; reads return "as many bytes as possible ...
  without regard for whether or not the bytes originated from the same
  message".

A socket exists independent of the creating process and disappears when
no descriptor references it.  Connection establishment follows the
client/server pattern of Section 3.1: bind + listen + accept on one
side, connect on the other, producing a fresh *connection socket* on
the accepting side.
"""

from collections import deque

from repro.kernel import defs, errno
from repro.kernel.waitq import WaitQueue

# Socket connection states.
ST_UNCONNECTED = "unconnected"
ST_LISTENING = "listening"
ST_CONNECTING = "connecting"
ST_CONNECTED = "connected"
ST_REFUSED = "refused"
ST_CLOSED = "closed"

class Socket:
    """One endpoint of communication."""

    kind = "socket"

    def __init__(self, machine, domain, type_, protocol=0):
        self.machine = machine
        self.domain = domain
        self.type = type_
        self.protocol = protocol

        #: Bound SocketName, or None.
        self.name = None
        self.state = ST_UNCONNECTED

        # -- stream connection state --
        self.backlog = 0
        #: Embryo connection sockets awaiting accept() (server side).
        self.pending = deque()
        self.peer_name = None
        #: (peer Host, peer endpoint id) once connected.
        self.peer = None
        self.endpoint_id = None
        #: Bytes we may still push to the peer before blocking.
        self.send_credit = defs.SOCK_BUFFER_BYTES
        #: Peer will send no more data (half or full close): reads EOF.
        self.peer_closed = False
        #: Peer is fully gone: our writes fail with EPIPE.
        self.peer_gone = False
        #: We half-closed our sending side (shutdown(2)).
        self.write_closed = False

        # -- receive queues --
        #: Stream: deque of byte chunks. Datagram: deque of (bytes, name).
        self.recv_queue = deque()
        self.recv_bytes = 0

        #: Predefined datagram recipient set by connect() on a dgram
        #: socket (Section 3.1).
        self.default_dest = None
        #: Direct peer for datagram socketpairs (local, reliable).
        self.pair_peer = None

        #: Pending asynchronous error (e.g. ECONNREFUSED), consumed by
        #: the next operation.
        self.error = None

        # Wait queues.
        self.rd_wait = WaitQueue("read")
        self.wr_wait = WaitQueue("write")
        self.conn_wait = WaitQueue("conn")

        self.closed = False

        # Statistics (used by benches and the transparency study).
        self.bytes_sent = 0
        self.bytes_received = 0
        self.messages_sent = 0
        self.messages_received = 0

    # ------------------------------------------------------------------

    @property
    def is_stream(self):
        return self.type == defs.SOCK_STREAM

    @property
    def is_dgram(self):
        return self.type == defs.SOCK_DGRAM

    def readable(self):
        """select() readability (also: a listener with pending conns)."""
        if self.error is not None:
            return True
        if self.state == ST_LISTENING:
            return bool(self.pending)
        if self.recv_bytes > 0 or self.recv_queue:
            return True
        return self.is_stream and self.state == ST_CONNECTED and self.peer_closed

    def writable(self):
        if self.is_dgram:
            return True
        return self.state == ST_CONNECTED and (
            self.send_credit > 0 or self.peer_gone
        )

    # -- receive-side plumbing (called from the machine packet layer) --

    def enqueue_stream_data(self, data):
        self.recv_queue.append(bytes(data))
        self.recv_bytes += len(data)
        self.messages_received += 1
        self.bytes_received += len(data)
        self.rd_wait.wake_all()

    def enqueue_datagram(self, data, src_name):
        """Queue a datagram if budget allows; silently drops otherwise
        (datagram delivery "is not guaranteed")."""
        if self.recv_bytes + len(data) > defs.DGRAM_QUEUE_BYTES:
            return False
        self.recv_queue.append((bytes(data), src_name))
        self.recv_bytes += len(data)
        self.messages_received += 1
        self.bytes_received += len(data)
        self.rd_wait.wake_all()
        return True

    def take_stream_bytes(self, nbytes):
        """Dequeue up to ``nbytes`` from the stream buffer."""
        if self.recv_queue:
            first = self.recv_queue[0]
            # Zero-copy fast path: the whole first chunk satisfies the
            # read (big filter reads usually drain one shipped batch).
            if len(first) == nbytes or (
                len(first) < nbytes and len(self.recv_queue) == 1
            ):
                self.recv_queue.popleft()
                self.recv_bytes -= len(first)
                return first
        parts = []
        remaining = nbytes
        while remaining > 0 and self.recv_queue:
            chunk = self.recv_queue[0]
            if len(chunk) <= remaining:
                parts.append(chunk)
                remaining -= len(chunk)
                self.recv_queue.popleft()
            else:
                parts.append(chunk[:remaining])
                self.recv_queue[0] = chunk[remaining:]
                remaining = 0
        data = b"".join(parts)
        self.recv_bytes -= len(data)
        return data

    def take_datagram(self, nbytes):
        """Dequeue one whole datagram, truncated to ``nbytes``
        ("A datagram is read as a complete message.  Each new read will
        obtain bytes from a new message.")."""
        data, src_name = self.recv_queue.popleft()
        self.recv_bytes -= len(data)
        return data[:nbytes], src_name

    def consume_error(self):
        err = self.error
        self.error = None
        return err

    # ------------------------------------------------------------------

    def reset(self, err=None):
        """Abort the connection (peer crashed or the path was severed):
        undelivered data is gone, the next read fails with ECONNRESET,
        writes fail with EPIPE, and every blocked caller wakes."""
        if self.closed:
            return
        self.error = errno.ECONNRESET if err is None else err
        self.peer_closed = True
        self.peer_gone = True
        self.recv_queue.clear()
        self.recv_bytes = 0
        self.rd_wait.wake_all()
        self.wr_wait.wake_all()
        self.conn_wait.wake_all()

    def set_peer_closed(self, full=True):
        self.peer_closed = True
        if full:
            self.peer_gone = True
        self.rd_wait.wake_all()
        self.wr_wait.wake_all()
        self.conn_wait.wake_all()

    def add_send_credit(self, nbytes):
        self.send_credit += nbytes
        self.wr_wait.wake_all()

    def close(self):
        """Release the socket (refcount hit zero)."""
        if self.closed:
            return
        self.closed = True
        self.state = ST_CLOSED
        self.machine.socket_closed(self)

    def __repr__(self):
        flavor = "stream" if self.is_stream else "dgram"
        return "Socket({0}, {1}, name={2}, state={3})".format(
            self.machine.host.name,
            flavor,
            self.name.display() if self.name else None,
            self.state,
        )
