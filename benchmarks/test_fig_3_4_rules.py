"""Figure 3.4 -- Selection rules with wildcard, discard and
cross-field comparison.

Rules:  "machine=#*, type=1, pid=#*, size>=512"  (size -> msgLength)
        "type=8, sockName=peerName"
"""

from benchmarks.conftest import HOSTS, synthetic_send_records
from repro.filtering.descriptions import default_description_set
from repro.filtering.rules import parse_rules

FIGURE_3_4_RULES = """\
machine=#*, type=1, pid=#*, msgLength>=512
type=8, sockName=peerName
"""

N_RECORDS = 1000


def test_fig_3_4_wildcard_discard_rules(benchmark):
    descriptions = default_description_set()
    records = [
        descriptions.decode_message(raw, HOSTS)
        for raw in synthetic_send_records(N_RECORDS)
    ]
    rules = parse_rules(FIGURE_3_4_RULES)

    def select_and_reduce():
        saved = []
        for record in records:
            reduced = rules.apply(record)
            if reduced is not None:
                saved.append(reduced)
        return saved

    saved = benchmark(select_and_reduce)
    assert saved, "some sends exceed 512 bytes"
    for record in saved:
        assert record["msgLength"] >= 512
        # The discard character '#' removed the marked fields.
        assert "machine" not in record
        assert "pid" not in record
    print(
        "\n[fig 3.4] {0}/{1} records accepted; machine/pid fields "
        "discarded from each".format(len(saved), N_RECORDS)
    )
