"""Guest-side convenience subroutines.

Guest programs are generators, so shared helpers are sub-generators
used with ``yield from``::

    text = yield from guestlib.read_whole_file(sys, "descriptions")

Nothing here is privileged; everything reduces to plain syscalls.
"""

import json

from repro.kernel import errno
from repro.kernel.errno import SyscallError


def read_whole_file(sys, path):
    """Open, read to EOF, close; returns the content as text."""
    fd = yield sys.open(path, "r")
    chunks = []
    while True:
        data = yield sys.read(fd, 4096)
        if not data:
            break
        chunks.append(data)
    yield sys.close(fd)
    return b"".join(chunks).decode("ascii", "replace")


def read_whole_bytes(sys, path):
    """Open, read to EOF, close; returns the raw bytes (binary files
    such as trace-store segments).  None if the file is absent."""
    try:
        fd = yield sys.open(path, "r")
    except SyscallError as err:
        if err.errno == errno.ENOENT:
            return None
        raise
    chunks = []
    while True:
        data = yield sys.read(fd, 65536)
        if not data:
            break
        chunks.append(data)
    yield sys.close(fd)
    return b"".join(chunks)


def read_optional_file(sys, path):
    """Like :func:`read_whole_file` but returns None if absent."""
    try:
        text = yield from read_whole_file(sys, path)
    except SyscallError as err:
        if err.errno == errno.ENOENT:
            return None
        raise
    return text


def write_text(sys, path, text, mode="w"):
    """Create/append a text file."""
    fd = yield sys.open(path, mode)
    yield sys.write(fd, text.encode("ascii"))
    yield sys.close(fd)


def read_exactly(sys, fd, nbytes):
    """Read exactly ``nbytes`` from a stream; returns None at EOF."""
    parts = []
    remaining = nbytes
    while remaining > 0:
        data = yield sys.read(fd, remaining)
        if not data:
            return None
        parts.append(data)
        remaining -= len(data)
    return b"".join(parts)


def read_exactly_timeout(sys, fd, nbytes, timeout_ms):
    """Like :func:`read_exactly` but with a deadline: raises
    ``SyscallError(ETIMEDOUT)`` if the bytes do not arrive in time.

    The deadline is enforced with select-with-timeout against a
    ``gettimeofday`` budget, so a peer that stops talking mid-frame
    cannot wedge the caller forever.
    """
    start = yield sys.gettimeofday()
    deadline = start + timeout_ms
    parts = []
    remaining = nbytes
    while remaining > 0:
        now = yield sys.gettimeofday()
        budget = deadline - now
        if budget <= 0:
            raise SyscallError(errno.ETIMEDOUT, "read deadline expired")
        ready, __ = yield sys.select([fd], timeout_ms=budget)
        if fd not in ready:
            raise SyscallError(errno.ETIMEDOUT, "read deadline expired")
        data = yield sys.read(fd, remaining)
        if not data:
            return None
        parts.append(data)
        remaining -= len(data)
    return b"".join(parts)


def read_line(sys, fd, buffered):
    """Read one newline-terminated line.

    ``buffered`` is a single-element list carrying leftover bytes
    across calls (generators cannot keep closure state for the caller).
    Returns the line without the newline, or None at EOF.
    """
    while b"\n" not in buffered[0]:
        data = yield sys.read(fd, 1024)
        if not data:
            if buffered[0]:
                line, buffered[0] = buffered[0], b""
                return line.decode("ascii", "replace")
            return None
        buffered[0] += data
    line, __, buffered[0] = buffered[0].partition(b"\n")
    return line.decode("ascii", "replace")


#: Errnos worth retrying: the peer may come (back) up, the partition
#: may heal.  Anything else is a hard programming or permission error.
TRANSIENT_ERRNOS = frozenset(
    {
        errno.ECONNREFUSED,
        errno.ECONNRESET,
        errno.ETIMEDOUT,
        errno.ENETUNREACH,
        errno.EPIPE,
    }
)


def backoff_sleep(sys, delay_ms):
    """Sleep ``delay_ms`` scaled by a seeded-random factor in [0.5, 1.0]
    (decorrelates retry storms without hurting reproducibility: the
    jitter comes from the simulator's own RNG via ``random(2)``)."""
    jitter = yield sys.random()
    yield sys.sleep(delay_ms * (0.5 + 0.5 * jitter))


def connect_retry(
    sys,
    domain,
    type_,
    name,
    attempts=50,
    backoff_ms=20.0,
    max_backoff_ms=320.0,
    timeout_ms=None,
):
    """Create a socket and connect, retrying on transient errors.

    Workload processes of a job all start at once (startjob), so a
    client can race its server's listen(); real 4.2BSD programs retried
    exactly like this.  The wait between attempts doubles from
    ``backoff_ms`` up to ``max_backoff_ms``, jittered by the simulator
    RNG so many retriers do not stampede in lockstep.  Returns the
    connected fd; on exhaustion raises a ``SyscallError`` naming the
    destination and the attempt count.
    """
    last_err = None
    delay = backoff_ms
    for __ in range(attempts):
        fd = yield sys.socket(domain, type_)
        try:
            yield sys.connect(fd, name, timeout_ms)
            return fd
        except SyscallError as err:
            last_err = err
            yield sys.close(fd)
            if err.errno not in TRANSIENT_ERRNOS:
                raise
            yield from backoff_sleep(sys, delay)
            delay = min(delay * 2.0, max_backoff_ms)
    raise SyscallError(
        last_err.errno,
        "connect to {0!r} failed after {1} attempts".format(name, attempts),
    )


def send_frame(sys, fd, payload):
    """Write a 4-byte-length-prefixed frame (controller/daemon RPC)."""
    header = len(payload).to_bytes(4, "big")
    yield sys.write(fd, header + payload)


#: Frames above this are junk, not protocol traffic: refuse instead of
#: blocking forever waiting for gigabytes that will never come.
MAX_FRAME_BYTES = 16 * 1024 * 1024


def recv_frame(sys, fd):
    """Read one length-prefixed frame; returns None at EOF or when the
    claimed length is absurd (a non-protocol peer)."""
    header = yield from read_exactly(sys, fd, 4)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        return None
    payload = yield from read_exactly(sys, fd, length)
    return payload


def recv_frame_timeout(sys, fd, timeout_ms):
    """Like :func:`recv_frame` but raises ``SyscallError(ETIMEDOUT)``
    when the whole frame has not arrived within ``timeout_ms``."""
    start = yield sys.gettimeofday()
    header = yield from read_exactly_timeout(sys, fd, 4, timeout_ms)
    if header is None:
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME_BYTES:
        return None
    now = yield sys.gettimeofday()
    budget = timeout_ms - (now - start)
    if budget <= 0:
        raise SyscallError(errno.ETIMEDOUT, "read deadline expired")
    payload = yield from read_exactly_timeout(sys, fd, length, budget)
    return payload


def send_json(sys, fd, obj):
    """One JSON object as a frame (workload wire format)."""
    yield from send_frame(sys, fd, json.dumps(obj).encode("ascii"))


def recv_json(sys, fd):
    """Read one JSON frame; returns None at EOF."""
    payload = yield from recv_frame(sys, fd)
    if payload is None:
        return None
    return json.loads(payload.decode("ascii"))
