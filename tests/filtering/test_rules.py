"""Selection rules (Figures 3.3 and 3.4)."""

import pytest

from repro.filtering.rules import RuleSet, parse_rules

SEND_RECORD = {
    "event": "send",
    "size": 60,
    "machine": 0,
    "cpuTime": 5000,
    "procTime": 10,
    "traceType": 1,
    "pid": 2117,
    "pc": 9,
    "sock": 4,
    "msgLength": 700,
    "destNameLen": 8,
    "destName": "228320140",
}

ACCEPT_RECORD = {
    "event": "accept",
    "size": 80,
    "machine": 5,
    "cpuTime": 9000,
    "procTime": 0,
    "traceType": 8,
    "pid": 2118,
    "pc": 3,
    "sock": 4,
    "newSock": 5,
    "sockName": "inet:red:5000",
    "peerName": "inet:red:5000",
}


def test_figure_3_3_first_rule():
    """"machine=5, cpuTime<10000" matches records from machine 5 with
    cpuTime under 10000."""
    rules = parse_rules("machine=5, cpuTime<10000\n")
    assert rules.apply(ACCEPT_RECORD) is not None
    assert rules.apply(SEND_RECORD) is None  # machine 0
    too_late = dict(ACCEPT_RECORD, cpuTime=10000)
    assert rules.apply(too_late) is None


def test_figure_3_3_second_rule():
    """"machine=0, type=1, sock=4, destName=228320140"."""
    rules = parse_rules("machine=0, type=1, sock=4, destName=228320140\n")
    assert rules.apply(SEND_RECORD) is not None
    assert rules.apply(dict(SEND_RECORD, sock=5)) is None
    assert rules.apply(ACCEPT_RECORD) is None


def test_figure_3_4_wildcard_discard_rule():
    """"machine=#*, type=1, pid=#*, size>=512": wildcard matches any
    value; '#' discards the field from the saved record."""
    rules = parse_rules("machine=#*, type=1, pid=#*, msgLength>=512\n")
    saved = rules.apply(SEND_RECORD)
    assert saved is not None
    assert "machine" not in saved
    assert "pid" not in saved
    assert saved["msgLength"] == 700
    small = dict(SEND_RECORD, msgLength=100)
    assert rules.apply(small) is None


def test_figure_3_4_cross_field_rule():
    """"type=8, sockName=peerName": compare two fields of the record."""
    rules = parse_rules("type=8, sockName=peerName\n")
    assert rules.apply(ACCEPT_RECORD) is not None
    differing = dict(ACCEPT_RECORD, peerName="inet:green:9")
    assert rules.apply(differing) is None


def test_any_rule_accepts():
    rules = parse_rules("machine=5\nmachine=0\n")
    assert rules.apply(SEND_RECORD) is not None
    assert rules.apply(ACCEPT_RECORD) is not None
    assert rules.apply(dict(SEND_RECORD, machine=9)) is None


def test_empty_ruleset_accepts_everything_unreduced():
    rules = RuleSet([])
    assert rules.apply(SEND_RECORD) == SEND_RECORD


def test_all_comparison_operators():
    record = {"x": 10}
    cases = [
        ("x=10", True), ("x=9", False),
        ("x!=9", True), ("x!=10", False),
        ("x<11", True), ("x<10", False),
        ("x>9", True), ("x>10", False),
        ("x<=10", True), ("x<=9", False),
        ("x>=10", True), ("x>=11", False),
    ]
    for text, expected in cases:
        rules = parse_rules(text + "\n")
        assert (rules.apply(record) is not None) == expected, text


def test_type_alias_accepts_event_names():
    rules = parse_rules("type=send\n")
    assert rules.apply(SEND_RECORD) is not None
    assert rules.apply(ACCEPT_RECORD) is None


def test_wildcard_without_discard_keeps_field():
    rules = parse_rules("machine=*\n")
    saved = rules.apply(SEND_RECORD)
    assert saved["machine"] == 0


def test_discard_with_literal_value():
    rules = parse_rules("machine=#0\n")
    saved = rules.apply(SEND_RECORD)
    assert saved is not None and "machine" not in saved
    assert rules.apply(ACCEPT_RECORD) is None  # machine=5 no match


def test_missing_field_fails_the_condition():
    rules = parse_rules("newSock=5\n")
    assert rules.apply(SEND_RECORD) is None
    assert rules.apply(ACCEPT_RECORD) is not None


def test_string_name_comparison():
    rules = parse_rules("destName=228320140\n")
    assert rules.apply(SEND_RECORD) is not None


def test_first_matching_rule_controls_reduction():
    rules = parse_rules("machine=#*, type=1\nmachine=*\n")
    saved_send = rules.apply(SEND_RECORD)
    assert "machine" not in saved_send  # first rule matched
    saved_accept = rules.apply(ACCEPT_RECORD)
    assert "machine" in saved_accept  # second rule matched


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        parse_rules("this is not a rule\n")
    with pytest.raises(ValueError):
        parse_rules("x=\n")


def test_blank_lines_ignored():
    rules = parse_rules("\n\nmachine=0\n\n")
    assert len(rules) == 1


# ---------------------------------------------------------------------------
# The compiled engine: dispatch table, fast paths, interpreted parity.
# ---------------------------------------------------------------------------

DISPATCH_TEXT = """
type=8, sockName=peerName
type=1, msgLength>500
machine=5, cpuTime<100000
type=#10
"""


def test_compiled_matches_interpreted_on_fixtures():
    compiled = parse_rules(DISPATCH_TEXT)
    interpreted = parse_rules(DISPATCH_TEXT, compiled=False)
    for record in (SEND_RECORD, ACCEPT_RECORD):
        assert compiled.apply(record) == interpreted.apply(record)
        assert compiled.apply(record) == compiled.apply_interpreted(record)


def test_dispatch_table_partitions_by_trace_type():
    rules = parse_rules(DISPATCH_TEXT)
    # Three pinned types (8, 1, 10) plus their string forms; the
    # machine=5 rule stays generic and is merged into every list.
    assert set(rules._dispatch) == {1, "1", 8, "8", 10, "10"}
    assert len(rules._generic) == 1
    # First-match order is preserved in the merged per-type lists: for
    # type 1 the pinned msgLength rule precedes the generic rule.
    assert len(rules._dispatch[1]) == 2


def test_pinned_rule_not_consulted_for_other_types():
    rules = parse_rules("type=1, msgLength>500\n")
    # An accept record never reaches the send-pinned rule; with no
    # generic rules the candidate list is empty and the record drops.
    assert rules.apply(ACCEPT_RECORD) is None
    assert rules.apply(SEND_RECORD) == SEND_RECORD


def test_contradictory_type_pins_match_nothing():
    rules = parse_rules("type=1, type=2\nmachine=*\n")
    for record in (SEND_RECORD, ACCEPT_RECORD):
        assert rules.apply(record) == record  # via the wildcard rule
    only = parse_rules("type=1, type=2\n")
    assert only.apply(SEND_RECORD) is None
    assert only.apply_interpreted(SEND_RECORD) is None


def test_wildcard_only_rule_takes_accept_all_fast_path():
    rules = parse_rules("machine=*\n")
    (rule,) = (rules._generic)
    assert rule.accepts_all
    assert rules.apply(SEND_RECORD) == SEND_RECORD


def test_wildcard_over_body_field_is_not_accept_all():
    # msgLength only exists on send/receive records, so the wildcard
    # must still test presence.
    rules = parse_rules("msgLength=*\n")
    (rule,) = rules._generic
    assert not rule.accepts_all
    assert rules.apply(SEND_RECORD) == SEND_RECORD
    assert rules.apply(ACCEPT_RECORD) is None


def test_wildcard_with_discard_still_reduces():
    rules = parse_rules("machine=*, pc=#*\n")
    saved = rules.apply(SEND_RECORD)
    assert "pc" not in saved
    assert saved == rules.apply_interpreted(SEND_RECORD)


def test_string_trace_type_reaches_pinned_rules():
    # _compare turns mixed types into strings, so a record carrying
    # traceType as "8" still matches a type=8 pin; the dispatch
    # table's str(pin) key keeps the compiled path equivalent.
    record = dict(ACCEPT_RECORD, traceType="8")
    rules = parse_rules("type=8\n")
    assert rules.apply(record) == record
    assert rules.apply_interpreted(record) == record
