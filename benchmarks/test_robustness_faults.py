"""Robustness -- the monitor's guarantees under injected faults.

The paper's promise (Sections 2, 3.1) is that metering rides reliable
streams and never perturbs the computation.  Drive a metered job
through seeded fault schedules -- datagram loss bursts, a healing
partition, a machine crash -- and measure two things: job completion
(survivors finish normally) and meter-record recall (fraction of the
unaffected machines' events that reached the filter log).
"""

from benchmarks.conftest import fresh_session
from repro.faults import FaultInjector, FaultPlan
from repro.kernel import defs

N_SENDS = 40


def _start_job(session, machines):
    session.command("filter f1 blue")
    session.command("newjob j")
    for index, machine in enumerate(machines):
        session.command(
            "addprocess j {0} dgramproducer {1} {2} {3} 64 5".format(
                machine, "red" if machine != "red" else "green",
                6000 + index, N_SENDS,
            )
        )
    session.command("setflags j send immediate")
    session.command("startjob j")


def _recall(session, cluster, machine):
    host_id = cluster.machine(machine).host.host_id
    records = session.read_trace("f1")
    sends = [
        r for r in records if r["event"] == "send" and r["machine"] == host_id
    ]
    return len(sends) / float(N_SENDS)


def _producer_states(cluster, machine):
    return [
        (p.state, p.exit_reason)
        for p in cluster.machine(machine).procs.values()
        if p.program_name == "dgramproducer"
    ]


def test_robustness_loss_burst(benchmark):
    """A heavy datagram loss burst hits the computation's traffic but
    never the meter stream: recall stays 1.0."""

    def scenario():
        session = fresh_session(seed=21)
        cluster = session.cluster
        _start_job(session, ["red"])
        now = cluster.sim.now
        plan = FaultPlan().loss_burst(now + 20.0, duration_ms=100.0, loss=0.6)
        FaultInjector(cluster, plan).arm()
        session.settle()
        return session, cluster

    session, cluster = benchmark.pedantic(scenario, rounds=1, iterations=1)
    recall = _recall(session, cluster, "red")
    dropped = cluster.network.datagrams_dropped
    print(
        "\n[robustness/loss] recall {0:.2f} with {1} datagrams dropped".format(
            recall, dropped
        )
    )
    assert recall == 1.0
    assert dropped > 0  # the burst really did bite the workload
    assert _producer_states(cluster, "red") == [
        (defs.PROC_ZOMBIE, defs.EXIT_NORMAL)
    ]


def test_robustness_partition_and_heal(benchmark):
    """Partition one producer's machine away mid-run, then heal: the
    unaffected machine's recall is perfect and both jobs complete."""

    def scenario():
        session = fresh_session(seed=22)
        cluster = session.cluster
        _start_job(session, ["red", "green"])
        now = cluster.sim.now
        plan = (
            FaultPlan()
            .partition(now + 40.0, [["red", "blue", "yellow"], ["green"]])
            .heal(now + 140.0)
        )
        FaultInjector(cluster, plan).arm()
        session.settle()
        return session, cluster

    session, cluster = benchmark.pedantic(scenario, rounds=1, iterations=1)
    recall = _recall(session, cluster, "red")
    print("\n[robustness/partition] red recall {0:.2f}".format(recall))
    assert recall == 1.0
    for machine in ("red", "green"):
        assert _producer_states(cluster, machine) == [
            (defs.PROC_ZOMBIE, defs.EXIT_NORMAL)
        ]


def test_robustness_machine_crash(benchmark):
    """Crash one producer's machine mid-run (and reboot it later): the
    controller survives, the other machine's recall is perfect."""

    def scenario():
        session = fresh_session(seed=23)
        cluster = session.cluster
        _start_job(session, ["red", "green"])
        now = cluster.sim.now
        plan = (
            FaultPlan()
            .crash(now + 50.0, "green")
            .reboot(now + 200.0, "green")
        )
        FaultInjector(cluster, plan, session=session).arm()
        session.settle()
        return session, cluster

    session, cluster = benchmark.pedantic(scenario, rounds=1, iterations=1)
    recall = _recall(session, cluster, "red")
    print("\n[robustness/crash] red recall {0:.2f}".format(recall))
    assert recall == 1.0
    assert session.controller_alive()
    assert cluster.machine("green").crash_count == 1
    assert not cluster.machine("green").crashed
    assert _producer_states(cluster, "red") == [
        (defs.PROC_ZOMBIE, defs.EXIT_NORMAL)
    ]
