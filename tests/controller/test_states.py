"""The Figure 4.2 process state diagram, exhaustively."""

import itertools

import pytest

from repro.controller import states


ALL = states.ALL_STATES

#: The exact edge set of Figure 4.2.
EXPECTED_EDGES = {
    (states.NEW, states.RUNNING),
    (states.NEW, states.STOPPED),
    (states.RUNNING, states.STOPPED),
    (states.STOPPED, states.RUNNING),
    (states.RUNNING, states.KILLED),
    (states.STOPPED, states.KILLED),
}


@pytest.mark.parametrize("old,new", list(itertools.product(ALL, ALL)))
def test_transition_table_matches_figure_4_2(old, new):
    assert states.can_transition(old, new) == ((old, new) in EXPECTED_EDGES)


def test_new_cannot_be_killed_directly():
    """"A process cannot move directly to the killed state from the new
    state.  This restriction is enforced as a precautionary measure."""
    assert not states.can_transition(states.NEW, states.KILLED)


def test_killed_is_terminal():
    for target in ALL:
        assert not states.can_transition(states.KILLED, target)


def test_acquired_is_isolated():
    """"An acquired process cannot be stopped or killed"."""
    for other in ALL:
        assert not states.can_transition(states.ACQUIRED, other)
        assert not states.can_transition(other, states.ACQUIRED)


def test_startable_only_new_and_stopped():
    assert [s for s in ALL if states.startable(s)] == [states.NEW, states.STOPPED]


def test_stoppable_only_new_and_running():
    assert [s for s in ALL if states.stoppable(s)] == [states.NEW, states.RUNNING]


def test_removable_killed_stopped_acquired():
    assert {s for s in ALL if states.removable(s)} == {
        states.KILLED,
        states.STOPPED,
        states.ACQUIRED,
    }


def test_active_states_block_die():
    assert set(states.ACTIVE_STATES) == {
        states.NEW,
        states.STOPPED,
        states.RUNNING,
        states.ACQUIRED,
    }
