"""File syscalls, descriptors, fork/exec/forkexec, rcp, procstat."""

import pytest

from repro.kernel import defs, errno
from repro.kernel.errno import SyscallError
from tests.conftest import run_guests


def test_open_write_read_roundtrip(cluster):
    contents = []

    def guest(sys, argv):
        fd = yield sys.open("/tmp/out", "w")
        yield sys.write(fd, b"line one\n")
        yield sys.write(fd, b"line two\n")
        yield sys.close(fd)
        fd = yield sys.open("/tmp/out", "r")
        contents.append((yield sys.read(fd, 1000)))
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert contents == [b"line one\nline two\n"]


def test_append_mode(cluster):
    def guest(sys, argv):
        fd = yield sys.open("/tmp/log", "w")
        yield sys.write(fd, b"a")
        yield sys.close(fd)
        fd = yield sys.open("/tmp/log", "a")
        yield sys.write(fd, b"b")
        yield sys.close(fd)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    node = cluster.machine("red").fs.node("/tmp/log")
    assert bytes(node.data) == b"ab"


def test_unlink_syscall(cluster):
    def guest(sys, argv):
        fd = yield sys.open("/tmp/x", "w")
        yield sys.close(fd)
        yield sys.unlink("/tmp/x")
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert not cluster.machine("red").fs.exists("/tmp/x")


def test_write_to_read_only_fd_denied(cluster):
    errors = []

    def guest(sys, argv):
        cluster.machine("red").fs.install("/tmp/ro", b"x", mode=0o644)
        fd = yield sys.open("/tmp/ro", "r")
        try:
            yield sys.write(fd, b"nope")
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EACCES]


def test_bad_fd_is_ebadf(cluster):
    errors = []

    def guest(sys, argv):
        try:
            yield sys.read(55, 10)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EBADF]


def test_fd_allocation_is_lowest_free(cluster):
    fds = []

    def guest(sys, argv):
        a = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        b = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.close(a)
        c = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        fds.extend([a, b, c])
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    a, b, c = fds
    assert c == a  # the freed slot is reused
    assert b == a + 1


def test_descriptor_limit_is_emfile(cluster):
    errors = []

    def guest(sys, argv):
        try:
            for __ in range(defs.NOFILE + 1):
                yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.EMFILE]


def test_dup_shares_file_offset(cluster):
    reads = []

    def guest(sys, argv):
        cluster.machine("red").fs.install("/tmp/f", b"abcdef", mode=0o644)
        fd = yield sys.open("/tmp/f", "r")
        dup_fd = yield sys.dup(fd)
        reads.append((yield sys.read(fd, 3)))
        reads.append((yield sys.read(dup_fd, 3)))  # continues, not restarts
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert reads == [b"abc", b"def"]


def test_dup2_replaces_target_descriptor(cluster):
    out = []

    def guest(sys, argv):
        fd = yield sys.open("/tmp/out", "w")
        yield sys.dup2(fd, 1)  # stdout now the file
        yield sys.write(1, b"redirected")
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    node = cluster.machine("red").fs.node("/tmp/out")
    assert bytes(node.data) == b"redirected"
    del out


def test_fork_child_inherits_descriptors(cluster):
    got = []

    def child(sys, argv):
        got.append((yield sys.read(int(argv[0]), 100)))
        yield sys.exit(0)

    def parent(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_STREAM)
        yield sys.fork(child, [str(b)])
        yield sys.write(a, b"inherited")
        __, events = yield sys.select([], want_children=True)
        yield sys.exit(0)

    run_guests(cluster, ("red", parent, ()))
    assert got == [b"inherited"]


def test_fork_returns_child_pid_and_links_parent(cluster):
    info = {}

    def child(sys, argv):
        yield sys.exit(0)

    def parent(sys, argv):
        pid = yield sys.fork(child, ())
        info["child_pid"] = pid
        info["self"] = yield sys.getpid()
        yield sys.exit(0)

    (proc,) = run_guests(cluster, ("red", parent, ()))
    child_pid = info["child_pid"]
    assert child_pid != info["self"]
    machine = cluster.machine("red")
    assert machine.procs[child_pid].ppid == proc.pid


def test_execv_replaces_program_image(cluster):
    cluster.install_program("target", _exec_target)

    def guest(sys, argv):
        yield sys.execv("/bin/target", ["arg1"])
        raise AssertionError("unreachable: exec does not return")

    (proc,) = run_guests(cluster, ("red", guest, ()))
    assert proc.program_name == "target"
    assert proc.exit_status == 99


def _exec_target(sys, argv):
    assert argv == ["arg1"]
    yield sys.exit(99)


def test_execv_missing_file_is_enoent(cluster):
    errors = []

    def guest(sys, argv):
        try:
            yield sys.execv("/bin/nothing", [])
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    assert errors == [errno.ENOENT]


def test_forkexec_creates_suspended_child(cluster):
    cluster.install_program("sleeper", _sleeper)
    pids = []

    def guest(sys, argv):
        pid = yield sys.forkexec("/bin/sleeper", [], start=False)
        pids.append(pid)
        yield sys.exit(0)

    run_guests(cluster, ("red", guest, ()))
    machine = cluster.machine("red")
    child = machine.procs[pids[0]]
    assert child.state == defs.PROC_EMBRYO
    machine.continue_proc(child)
    cluster.run_until_exit([child])
    assert child.exit_status == 0


def _sleeper(sys, argv):
    yield sys.compute(1)
    yield sys.exit(0)


def test_forkexec_stdio_mapping(cluster):
    cluster.install_program("writerprog", _writer_prog)
    got = []

    def parent(sys, argv):
        a, b = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_DGRAM)
        yield sys.forkexec("/bin/writerprog", [], stdio_fd=b, start=True)
        yield sys.close(b)
        got.append((yield sys.read(a, 100)))
        yield sys.exit(0)

    run_guests(cluster, ("red", parent, ()))
    assert got == [b"to stdout"]


def _writer_prog(sys, argv):
    yield sys.write(1, b"to stdout")
    yield sys.exit(0)


def test_forkexec_setuid_requires_root(cluster):
    cluster.install_program("sleeper2", _sleeper)
    errors = []

    def guest(sys, argv):
        try:
            yield sys.forkexec("/bin/sleeper2", [], uid=300)
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    proc = cluster.spawn("red", guest, uid=100)
    cluster.run_until_exit([proc])
    assert errors == [errno.EPERM]


def test_forkexec_as_root_can_setuid(cluster):
    cluster.install_program("sleeper3", _sleeper)
    pids = []

    def guest(sys, argv):
        pids.append((yield sys.forkexec("/bin/sleeper3", [], uid=100)))
        yield sys.exit(0)

    proc = cluster.spawn("red", guest, uid=0)
    cluster.run_until_exit([proc])
    assert cluster.machine("red").procs[pids[0]].uid == 100


def test_rcp_copies_between_machines(cluster):
    cluster.machine("red").fs.install("/data/file", b"payload", mode=0o644)

    def guest(sys, argv):
        yield sys.rcp("red", "/data/file", "green", "/data/copy")
        yield sys.exit(0)

    run_guests(cluster, ("blue", guest, ()))
    node = cluster.machine("green").fs.node("/data/copy")
    assert bytes(node.data) == b"payload"


def test_rcp_copies_program_attribute(cluster):
    cluster.install_program("prog", _sleeper, machines=["red"])

    def guest(sys, argv):
        yield sys.rcp("red", "/bin/prog", "green", "/bin/prog")
        yield sys.exit(0)

    run_guests(cluster, ("blue", guest, ()))
    assert cluster.machine("green").fs.node("/bin/prog").program == "prog"


def test_rcp_respects_source_permissions(cluster):
    cluster.machine("red").fs.install("/data/secret", b"s", owner=1, mode=0o600)
    errors = []

    def guest(sys, argv):
        try:
            yield sys.rcp("red", "/data/secret", "green", "/tmp/x")
        except SyscallError as err:
            errors.append(err.errno)
        yield sys.exit(0)

    proc = cluster.spawn("blue", guest, uid=100)
    cluster.run_until_exit([proc])
    assert errors == [errno.EACCES]


def test_rcp_takes_time_proportional_to_size(cluster):
    cluster.machine("red").fs.install("/data/big", b"x" * 100_000, mode=0o644)

    def guest(sys, argv):
        yield sys.rcp("red", "/data/big", "green", "/data/big")
        yield sys.exit(0)

    run_guests(cluster, ("blue", guest, ()))
    # 100 KB over 1.25 MB/s is ~80ms of transfer time.
    assert cluster.sim.now >= 50.0


def test_procstat_and_hasaccount(cluster):
    stats = {}

    def target(sys, argv):
        yield sys.sleep(10_000)
        yield sys.exit(0)

    victim = cluster.spawn("red", target, uid=100)

    def guest(sys, argv):
        stats["stat"] = yield sys.procstat(int(argv[0]))
        stats["acct100"] = yield sys.hasaccount(100)
        stats["acct999"] = yield sys.hasaccount(999)
        stats["acct0"] = yield sys.hasaccount(0)
        yield sys.exit(0)

    cluster.machine("red").accounts.add(100)
    proc = cluster.spawn("red", guest, argv=[str(victim.pid)], uid=0)
    cluster.run_until_exit([proc])
    assert stats["stat"]["uid"] == 100
    assert stats["acct100"] is True
    assert stats["acct999"] is False
    assert stats["acct0"] is True  # root always
