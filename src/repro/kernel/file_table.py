"""The system open-file table.

Descriptor tables map small integers to shared file-table entries, as
in 4.2BSD: ``dup()`` and ``fork()`` share entries (and hence offsets),
and an entry's object is released when its reference count drops to
zero ("A socket disappears when it is no longer referenced by any
process", Section 3.1).

Each entry has a machine-unique integer ``addr`` standing in for the C
implementation's file-table-entry address; Section 4.1: "Sockets are
identified by their address within the system descriptor table.  This
ensures that socket addresses are unique within a particular machine."
Meter messages carry this value in their ``sock`` fields.
"""

import itertools


class FileTableEntry:
    """One open file or socket, shared by any number of descriptors."""

    __slots__ = ("addr", "obj", "refcount")

    def __init__(self, addr, obj):
        self.addr = addr
        self.obj = obj  # Socket, OpenFile, or a tty device
        self.refcount = 0

    @property
    def kind(self):
        return self.obj.kind

    def __repr__(self):
        return "FileTableEntry(addr={0}, kind={1}, refs={2})".format(
            self.addr, self.kind, self.refcount
        )


class FileTable:
    """Per-machine table of open objects."""

    def __init__(self):
        self._addr_counter = itertools.count(0x1000, 0x10)
        self.entries = {}

    def allocate(self, obj):
        """Wrap ``obj`` in a new entry with refcount 0."""
        entry = FileTableEntry(next(self._addr_counter), obj)
        self.entries[entry.addr] = entry
        return entry

    def ref(self, entry):
        entry.refcount += 1
        return entry

    def unref(self, entry):
        """Drop a reference; closes the object at zero.  Returns True
        if the object was released."""
        entry.refcount -= 1
        if entry.refcount > 0:
            return False
        self.entries.pop(entry.addr, None)
        entry.obj.close()
        return True

    def live_count(self):
        return len(self.entries)
