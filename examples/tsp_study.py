#!/usr/bin/env python
"""The performance-debugging study (Lai & Miller 84; paper Section 5).

"A multiprocess computation was developed and debugged using the tool,
which led to substantial modifications of the program resulting in
substantial improvements of its performance."

This example retells that story with the distributed TSP solver:

1. run the naive solver (v1) under the monitor;
2. analyze the trace -- the parallelism profile shows the workers
   serialized (the master waits for each result before sending the
   next subproblem);
3. run the fixed solver (v2) and show the improvement.

Run:  python examples/tsp_study.py
"""

from repro.analysis import (
    CommunicationGraph,
    CommunicationStatistics,
    ParallelismProfile,
    Trace,
)
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.programs import install_all

WORKERS = (("red", "tspworker"), ("green", "tspworker"), ("blue", "tspworker"))


def run_version(version):
    cluster = Cluster(seed=3)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob tsp")
    session.command(
        "addprocess tsp yellow tspmaster {0} 5200 {1} 7 1".format(
            version, len(WORKERS)
        )
    )
    for machine, program in WORKERS:
        session.command("addprocess tsp {0} {1} yellow 5200".format(machine, program))
    session.command("setflags tsp all")
    session.command("startjob tsp")
    session.settle()
    result_lines = [
        line
        for line in session.drain_output().splitlines()
        if "best tour" in line
    ]
    return Trace(session.read_trace("f1")), result_lines


def main():
    print("== step 1: run the naive solver (v1) under the monitor ==")
    trace_v1, result_v1 = run_version("v1")
    profile_v1 = ParallelismProfile(trace_v1)
    print(profile_v1.report())
    print(CommunicationStatistics(trace_v1).report())
    print()

    print("== step 2: diagnose ==")
    graph = CommunicationGraph(trace_v1)
    print("communication shape:", graph.shape(), "(master is the hub)")
    print(
        "CPU parallelism {0:.2f} with {1} workers: the workers are "
        "serialized -- the master waits for each result before sending "
        "the next subproblem.".format(
            profile_v1.cpu_parallelism(), len(WORKERS)
        )
    )
    print()

    print("== step 3: run the fixed solver (v2) ==")
    trace_v2, result_v2 = run_version("v2")
    profile_v2 = ParallelismProfile(trace_v2)
    print(profile_v2.report())
    print()

    speedup = profile_v1.elapsed_ms() / profile_v2.elapsed_ms()
    print("== verdict ==")
    print("v1:", result_v1[0].strip() if result_v1 else "?")
    print("v2:", result_v2[0].strip() if result_v2 else "?")
    print(
        "elapsed {0:.0f} ms -> {1:.0f} ms: {2:.2f}x faster, same tour".format(
            profile_v1.elapsed_ms(), profile_v2.elapsed_ms(), speedup
        )
    )


if __name__ == "__main__":
    main()
