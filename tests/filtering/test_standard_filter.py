"""The standard filter, end to end: meter connections in, log file out."""

import pytest

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.filtering.records import parse_trace
from repro.kernel import defs


def _talker(port_base):
    """A metered workload: a datagram chatterer."""

    def main(sys, argv):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_DGRAM)
        yield sys.bind(fd, ("", port_base))
        for i in range(6):
            yield sys.sendto(fd, b"x" * (100 * (i + 1)), ("green", port_base + 1))
        yield sys.exit(0)

    return main


@pytest.fixture
def running_session():
    cluster = Cluster(seed=21)
    session = MeasurementSession(cluster, control_machine="yellow")
    session.install_program("talker", _talker(6100))
    return cluster, session


def _run_job(session, templates="templates"):
    session.command(
        "filter f1 blue filter descriptions {0}".format(templates)
    )
    session.command("newjob j")
    session.command("addprocess j red talker")
    session.command("setflags j send socket termproc")
    session.command("startjob j")
    session.settle()
    return session.read_trace("f1")


def test_filter_logs_all_events_with_default_templates(running_session):
    __, session = running_session
    records = _run_job(session)
    events = [r["event"] for r in records]
    assert events.count("send") == 6
    assert events.count("socket") == 1
    assert events.count("termproc") == 1


def test_filter_log_lives_in_usr_tmp(running_session):
    __, session = running_session
    _run_job(session)
    machine, __text = session.find_filter_log("f1")
    assert machine == "blue"
    assert session.cluster.machine("blue").fs.exists("/usr/tmp/f1.log")


def test_filter_applies_selection_rules(running_session):
    cluster, session = running_session
    cluster.machine("blue").fs.install(
        "only_big", "type=send, msgLength>=400\n", mode=0o644
    )
    records = _run_job(session, templates="only_big")
    assert records  # 400, 500, 600 byte sends
    assert all(r["event"] == "send" for r in records)
    assert all(r["msgLength"] >= 400 for r in records)
    assert len(records) == 3


def test_filter_reduces_discarded_fields(running_session):
    cluster, session = running_session
    cluster.machine("blue").fs.install(
        "reduced", "type=send, pc=#*, destName=#*\n", mode=0o644
    )
    records = _run_job(session, templates="reduced")
    assert records
    for record in records:
        assert "pc" not in record
        assert "destName" not in record
        assert "msgLength" in record


def test_missing_templates_file_means_no_selection(running_session):
    __, session = running_session
    records = _run_job(session, templates="nonexistent_templates")
    assert len(records) == 8  # everything logged


def test_one_filter_can_serve_multiple_computations(running_session):
    """Section 3.4: "it is possible to have one filter collect data
    from several computations"."""
    cluster, session = running_session
    session.install_program("talker2", _talker(6200))
    session.command("filter f1 blue")
    session.command("newjob one")
    session.command("addprocess one red talker")
    session.command("setflags one send")
    session.command("newjob two f1")
    session.command("addprocess two green talker2")
    session.command("setflags two send")
    session.command("startjob one")
    session.command("startjob two")
    session.settle()
    records = session.read_trace("f1")
    machines = {r["machine"] for r in records}
    assert len(machines) == 2  # both computations in one log


def test_filter_on_disjoint_machine(running_session):
    """Section 3.4: "A filter process may execute on a machine that is
    disjoint from the set of machines on which the processes of the
    computation are executing"."""
    __, session = running_session
    records = _run_job(session)  # filter on blue, workload on red
    assert records
    red_id = session.cluster.host_table.lookup("red").host_id
    assert {r["machine"] for r in records} == {red_id}
