"""The shrinker's contract: the output still fails its predicate, is a
subsequence of the input, is 1-minimal for the synthetic two-partition
bug, and the whole reduction is deterministic and budget-bounded."""

import pytest

from repro.chaos.shrink import is_subsequence, shrink_plan
from repro.faults.plan import FaultPlan

MACHINES = ("red", "green", "blue", "yellow")


def _noisy_plan():
    """A 14-event schedule in which exactly two partitions hide among
    unrelated noise (the synthetic bug: >= 2 partitions is a failure)."""
    plan = FaultPlan(machines=MACHINES)
    plan.loss_burst(10.0, duration_ms=40.0, loss=0.3)
    plan.latency_spike(30.0, duration_ms=50.0, extra_ms=12.0)
    plan.kill_process(60.0, "green", "meterdaemon")
    plan.partition(90.0, [["red"], ["green", "blue", "yellow"]])
    plan.heal(140.0)
    plan.restart_daemon(170.0, "green")
    plan.loss_burst(200.0, duration_ms=30.0, loss=0.5)
    plan.storage_bit_rot(230.0, "blue", "/usr/tmp/f1.store", flips=3, seed=7)
    plan.partition(260.0, [["blue"], ["red", "green", "yellow"]])
    plan.heal(320.0)
    plan.latency_spike(350.0, duration_ms=20.0, extra_ms=8.0)
    plan.kill_process(380.0, "blue", "filter")
    plan.storage_torn_write(410.0, "blue", "/usr/tmp/f1.store", drop_bytes=64)
    plan.loss_burst(440.0, duration_ms=25.0, loss=0.2)
    return plan


def _two_partitions(plan):
    return sum(1 for event in plan.events if event.kind == "partition") >= 2


def test_two_partition_bug_shrinks_to_exactly_two_events():
    plan = _noisy_plan()
    assert len(plan) >= 12
    result = shrink_plan(plan, _two_partitions)
    assert result.final_events == 2
    assert all(event.kind == "partition" for event in result.plan.events)
    assert _two_partitions(result.plan)
    assert is_subsequence(result.plan, plan)


def test_shrink_is_deterministic():
    plan = _noisy_plan()
    first = shrink_plan(plan, _two_partitions)
    second = shrink_plan(plan, _two_partitions)
    assert first.plan.to_json() == second.plan.to_json()
    assert first.probes == second.probes
    assert first.history == second.history


def test_output_always_fails_and_is_a_subsequence():
    plan = _noisy_plan()

    def fails(candidate):
        kinds = candidate.kinds()
        return "storage_bit_rot" in kinds and "kill_process" in kinds

    result = shrink_plan(plan, fails)
    assert fails(result.plan)
    assert is_subsequence(result.plan, plan)
    assert result.final_events == 2


def test_parameter_narrowing_simplifies_surviving_events():
    plan = FaultPlan(machines=MACHINES)
    plan.storage_bit_rot(137.3, "blue", "/usr/tmp/f1.store", flips=4, seed=9)

    def fails(candidate):
        return candidate.has_kind("storage_bit_rot")

    result = shrink_plan(plan, fails)
    event = result.plan.events[0]
    assert event.args["flips"] == 1
    # Timestamps snap onto the coarse grid when the failure survives.
    assert event.at_ms == 100.0


def test_narrowing_can_be_disabled():
    plan = FaultPlan(machines=MACHINES)
    plan.storage_bit_rot(137.3, "blue", "/usr/tmp/f1.store", flips=4, seed=9)
    result = shrink_plan(
        plan, lambda p: p.has_kind("storage_bit_rot"), narrow=False
    )
    assert result.plan.events[0].args["flips"] == 4
    assert result.plan.events[0].at_ms == 137.3


def test_passing_plan_is_rejected():
    with pytest.raises(ValueError):
        shrink_plan(_noisy_plan(), lambda plan: False)


def test_probe_budget_bounds_the_reduction():
    plan = _noisy_plan()
    result = shrink_plan(plan, _two_partitions, max_probes=3)
    assert result.probes <= 3
    # Whatever came out still fails -- the budget never trades away
    # the known-failing candidate.
    assert _two_partitions(result.plan)


def test_is_subsequence_rejects_reordered_and_invented_events():
    original = _noisy_plan()
    reordered = FaultPlan(machines=MACHINES)
    reordered.partition(10.0, [["blue"], ["red", "green", "yellow"]])
    reordered.partition(20.0, [["red"], ["green", "blue", "yellow"]])
    assert not is_subsequence(reordered, original)
    invented = FaultPlan(machines=MACHINES)
    invented.crash(10.0, "red")
    assert not is_subsequence(invented, original)
