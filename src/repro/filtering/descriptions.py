"""Event record descriptions (Figure 3.2).

The description file defines the message formats for the meter/filter
protocol: one line per event type, listing each body field as
``name,offset,length,base``::

    HEADER size machine cpuTime procTime traceType
    SEND 1, pid,0,4,10 pc,4,4,10 sock,8,4,10 msgLength,12,4,10
           destNameLen,16,4,10 destName,20,16,16

Offsets are from the start of the message body (the 24-byte header is
common to all messages); base 10 fields are big-endian integers, and
base 16 fields of length 16 are NAME (sockaddr) blobs.

"Since the meter creates these messages, such definitions are very
important for establishing a successful protocol between the meter and
a filter" -- so the default description file is *generated from* the
codec's field tables (:func:`default_descriptions_text`), and the
standard filter decodes with the descriptions, never with the codec
directly.  A mismatch is therefore a real protocol failure, exactly as
it would have been in 1984.
"""

import struct

from repro.metering import messages
from repro.net.addresses import decode_name

HEADER_FIELDS = ("size", "machine", "cpuTime", "procTime", "traceType")

# Header layout (offset, length) within the 24-byte header.
_HEADER_LAYOUT = {
    "size": (0, 4),
    "machine": (4, 2),
    "cpuTime": (8, 4),
    "procTime": (16, 4),
    "traceType": (20, 4),
}

# One-shot unpack of the standard header (Dummy is the 4x gap).
_HEADER_STRUCT = struct.Struct(">ih2xi4xii")

# traceType alone (header offset 20), to pick the event description
# before the fused header+body unpack.
_TRACE_TYPE_STRUCT = struct.Struct(">i")

# struct codes for base-10 integer fields by byte length (big-endian,
# signed -- identical to the int.from_bytes(..., signed=True) fallback).
_INT_CODES = {1: "b", 2: "h", 4: "i", 8: "q"}


class FieldDescription:
    """One ``name,offset,length,base`` entry."""

    __slots__ = ("name", "offset", "length", "base")

    def __init__(self, name, offset, length, base):
        self.name = name
        self.offset = int(offset)
        self.length = int(length)
        self.base = int(base)

    def decode(self, body, host_names):
        raw = body[self.offset : self.offset + self.length]
        if self.base == 16 and self.length == 16:
            name = decode_name(raw, host_names)
            return name.display() if name is not None else ""
        return int.from_bytes(raw, "big", signed=True)

    def to_text(self):
        return "{0},{1},{2},{3}".format(self.name, self.offset, self.length, self.base)


class EventDescription:
    """All fields of one event type.

    At parse time the field specs are compiled into one
    ``struct.Struct`` (gaps between fields become pad bytes) so a body
    decodes with a single unpack.  Descriptions the struct module can't
    express -- overlapping fields, odd lengths or bases -- fall back to
    the per-field decode, as does any body shorter than the compiled
    layout.
    """

    def __init__(self, event, type_code, fields, compiled=True):
        self.event = event
        self.type_code = int(type_code)
        self.fields = list(fields)
        self._compiled = self._compile() if compiled else None

    def _compile(self):
        fmt = [">"]
        names = []
        name_fields = []
        position = 0
        for field in sorted(self.fields, key=lambda f: f.offset):
            if field.offset < position:
                return None  # overlapping fields: interpret per-field
            gap = field.offset - position
            if gap:
                fmt.append("%dx" % gap)
            if field.base == 16 and field.length == 16:
                fmt.append("16s")
                name_fields.append(len(names))
            elif field.base == 10 and field.length in _INT_CODES:
                fmt.append(_INT_CODES[field.length])
            else:
                return None
            names.append(field.name)
            position = field.offset + field.length
        return struct.Struct("".join(fmt)), tuple(names), tuple(name_fields)

    def field_names(self):
        return [field.name for field in self.fields]

    def compile_with_header(self):
        """Fuse the standard header and the compiled body layout into
        one struct, so a whole message decodes with a single unpack.
        Returns ``(unpacker, names, name_field_indices, event_name)``
        or None when the body needs the per-field fallback."""
        if self._compiled is None:
            return None
        body, names, name_fields = self._compiled
        fused = struct.Struct(_HEADER_STRUCT.format + body.format[1:])
        return (
            fused,
            HEADER_FIELDS + names,
            tuple(index + len(HEADER_FIELDS) for index in name_fields),
            self.event.lower(),
        )

    def decode_body(self, body, host_names, offset=0):
        compiled = self._compiled
        if compiled is None or len(body) - offset < compiled[0].size:
            if offset:
                body = body[offset:]
            return {
                field.name: field.decode(body, host_names)
                for field in self.fields
            }
        unpacker, names, name_fields = compiled
        values = list(unpacker.unpack_from(body, offset))
        for index in name_fields:
            decoded = decode_name(values[index], host_names)
            values[index] = decoded.display() if decoded is not None else ""
        return dict(zip(names, values))


class DescriptionSet:
    """A parsed description file: header + per-event descriptions."""

    def __init__(self, header_fields, events, compiled=True):
        self.header_fields = list(header_fields)
        #: type code -> EventDescription
        self.by_type = {event.type_code: event for event in events}
        self.by_name = {event.event.lower(): event for event in events}
        # The standard header decodes in one unpack; a HEADER line that
        # renames or subsets the fields keeps the per-field path.
        self._standard_header = compiled and tuple(header_fields) == HEADER_FIELDS
        # With the standard header, header + body of each regular event
        # fuse into one struct: type code -> (unpacker, names,
        # name_field_indices, event_name).
        self._fused = {}
        if self._standard_header:
            for event in events:
                fused = event.compile_with_header()
                if fused is not None:
                    self._fused[event.type_code] = fused

    def decode_message(self, raw, host_names=None):
        """Decode one complete meter message into a flat record dict."""
        host_names = host_names or {}
        if self._standard_header and len(raw) >= messages.HEADER_BYTES:
            fused = self._fused.get(_TRACE_TYPE_STRUCT.unpack_from(raw, 20)[0])
            if fused is not None and len(raw) >= fused[0].size:
                unpacker, names, name_fields, event_name = fused
                values = unpacker.unpack_from(raw)
                record = dict(zip(names, values))
                for index in name_fields:
                    decoded = decode_name(values[index], host_names)
                    record[names[index]] = (
                        decoded.display() if decoded is not None else ""
                    )
                record["event"] = event_name
                return record
            size, machine, cpu_time, proc_time, trace_type = (
                _HEADER_STRUCT.unpack_from(raw)
            )
            record = {
                "size": size,
                "machine": machine,
                "cpuTime": cpu_time,
                "procTime": proc_time,
                "traceType": trace_type,
            }
        else:
            record = {}
            for name in self.header_fields:
                offset, length = _HEADER_LAYOUT[name]
                record[name] = int.from_bytes(
                    raw[offset : offset + length], "big", signed=True
                )
        event = self.by_type.get(record["traceType"])
        if event is None:
            raise ValueError("no description for traceType %d" % record["traceType"])
        record["event"] = event.event.lower()
        record.update(
            event.decode_body(raw, host_names, offset=messages.HEADER_BYTES)
        )
        return record

    def field_order(self, event_name):
        """Display order for log records: header fields then body."""
        event = self.by_name[event_name.lower()]
        return ["event"] + list(self.header_fields) + event.field_names()


def parse_descriptions(text, compiled=True):
    """Parse a description file (Figure 3.2 format).

    ``compiled=False`` skips struct compilation and decodes every
    message field-by-field (the benchmark baseline).
    """
    header_fields = list(HEADER_FIELDS)
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        words = [t for t in line.split() if t]
        keyword = words[0]
        if keyword.upper() == "HEADER":
            header_fields = words[1:]
            continue
        # "SEND 1, pid,0,4,10 pc,4,4,10 ..."
        type_token = words[1].rstrip(",")
        fields = []
        for spec in words[2:]:
            parts = spec.split(",")
            if len(parts) != 4:
                raise ValueError("bad field spec %r in %r" % (spec, line))
            fields.append(FieldDescription(parts[0], parts[1], parts[2], parts[3]))
        events.append(EventDescription(keyword, type_token, fields, compiled=compiled))
    return DescriptionSet(header_fields, events, compiled=compiled)


def matches_appendix_a(descriptions):
    """True when this description set describes every Appendix-A event
    exactly as the codec tables do -- standard header, same type
    codes, event names, field names, offsets, lengths and bases.

    This is the precondition for installing column-level screens
    (:func:`repro.tracestore.batchscan.message_screen`) compiled
    against the codec layouts: a filter running with *edited*
    descriptions decodes differently, so it must not pre-reject on the
    codec's idea of the wire format.  Extra non-Appendix-A event types
    are fine -- a screen passes through types it was not compiled for.
    """
    if tuple(descriptions.header_fields) != tuple(HEADER_FIELDS):
        return False
    for event, type_code in messages.EVENT_TYPES.items():
        desc = descriptions.by_type.get(type_code)
        if desc is None or desc.event.lower() != event:
            return False
        fields = [
            (field.name, field.offset, field.length, field.base)
            for field in desc.fields
        ]
        if fields != messages.field_layout(event):
            return False
    return True


def default_descriptions_text():
    """Generate the canonical description file from the codec tables."""
    lines = ["HEADER " + " ".join(HEADER_FIELDS)]
    for event, type_code in sorted(
        messages.EVENT_TYPES.items(), key=lambda item: item[1]
    ):
        specs = [
            "{0},{1},{2},{3}".format(name, offset, length, base)
            for name, offset, length, base in messages.field_layout(event)
        ]
        lines.append("{0} {1}, {2}".format(event.upper(), type_code, " ".join(specs)))
    return "\n".join(lines) + "\n"


def default_description_set():
    return parse_descriptions(default_descriptions_text())
