"""repro -- A Distributed Programs Monitor for (simulated) Berkeley UNIX.

Reproduction of Miller, Macrander & Sechrest, "A Distributed Programs
Monitor for Berkeley UNIX" (ICDCS 1985 / UCB CSRG).

The package implements, on top of a deterministic discrete-event
simulation of a 4.2BSD machine cluster:

- ``repro.sim``        -- event loop, simulated time, drifting clocks
- ``repro.net``        -- internetwork: datagrams, streams, naming
- ``repro.kernel``     -- the simulated 4.2BSD kernel and syscall layer
- ``repro.metering``   -- the paper's kernel changes: setmeter(2), meter
                          flags, Appendix-A meter message formats
- ``repro.filtering``  -- filter processes, event-record descriptions,
                          selection rules
- ``repro.daemon``     -- per-machine meterdaemons and their RPC protocol
- ``repro.controller`` -- the control process (command interpreter)
- ``repro.analysis``   -- trace analysis: ordering, statistics,
                          parallelism, structure
- ``repro.programs``   -- guest workload programs (TSP, client/server...)
- ``repro.core``       -- high-level public API (Cluster,
                          MeasurementSession)
"""

__version__ = "1.0.0"

__all__ = ["Cluster", "MeasurementSession", "__version__"]


def __getattr__(name):
    # Lazy top-level exports: keep `import repro.sim` cheap and avoid
    # import cycles during package bring-up.
    if name == "Cluster":
        from repro.core.cluster import Cluster

        return Cluster
    if name == "MeasurementSession":
        from repro.core.session import MeasurementSession

        return MeasurementSession
    raise AttributeError(name)
