"""Trace merging, stats extensions, and the combined report."""

import pytest

from repro.analysis import Trace
from repro.analysis.report import measurement_report
from repro.analysis.stats import CommunicationStatistics
from tests.analysis.harness import TraceBuilder, two_process_stream_trace


def test_merge_combines_records_from_both_traces():
    a = two_process_stream_trace()
    b = TraceBuilder()
    b.send(3, 30, 500, sock=1, nbytes=10, dest="inet:x:1")
    merged = Trace.merge(a, b.build())
    assert len(merged) == len(a) + 1
    assert (3, 30) in merged.processes()


def test_merge_orders_by_local_time():
    early = TraceBuilder()
    early.send(1, 10, 100, sock=1, nbytes=5, dest="inet:x:1")
    late = TraceBuilder()
    late.send(2, 20, 50, sock=1, nbytes=5, dest="inet:x:1")
    merged = Trace.merge(early.build(), late.build())
    assert merged.events[0].local_time == 50


def test_merge_empty_traces():
    merged = Trace.merge(Trace([]), Trace([]))
    assert len(merged) == 0


def test_message_size_histogram():
    b = TraceBuilder()
    for size in (10, 70, 70, 200):
        b.send(1, 10, 100, sock=1, nbytes=size, dest="inet:x:1")
    stats = CommunicationStatistics(b.build())
    assert stats.message_size_histogram(bucket_bytes=64) == {0: 1, 64: 2, 192: 1}


def test_send_rates():
    b = TraceBuilder()
    # 3 sends over 100ms of local clock -> 20 msgs/s.
    for t in (0, 50, 100):
        b.send(1, 10, t, sock=1, nbytes=5, dest="inet:x:1")
    stats = CommunicationStatistics(b.build())
    assert stats.send_rates()[(1, 10)] == pytest.approx(20.0)


def test_send_rates_needs_two_sends():
    b = TraceBuilder()
    b.send(1, 10, 0, sock=1, nbytes=5, dest="inet:x:1")
    stats = CommunicationStatistics(b.build())
    assert stats.send_rates() == {}


def test_report_contains_every_section():
    report = measurement_report(two_process_stream_trace())
    for fragment in (
        "Communication statistics",
        "Parallelism profile",
        "Communication structure",
        "Message delays",
        "Clock skew",
        "Ordering:",
        "Trace audit",
        "Timeline",
    ):
        assert fragment in report, fragment


def test_report_on_empty_trace():
    assert "(empty trace)" in measurement_report(Trace([]))
