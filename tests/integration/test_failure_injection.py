"""Failure injection: the measurement system under partial failures.

The paper's design quietly depends on several robustness properties --
"Meter messages are lost if they are sent on an unconnected socket"
(Appendix C), temporary daemon connections because "long-standing
stream connections can be undependable" (Section 3.5.1) -- which these
tests make explicit.
"""

import pytest

from repro.analysis import Trace
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs
from repro.programs import install_all


def _make_session(seed=41):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    return session


def _kill(cluster, machine_name, program_name):
    machine = cluster.machine(machine_name)
    victims = [
        p for p in machine.procs.values()
        if p.program_name == program_name and p.state != defs.PROC_ZOMBIE
    ]
    for victim in victims:
        machine.post_signal(victim, defs.SIGKILL)
    return victims


def test_filter_death_healed_and_computation_survives():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 100 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(100)
    _kill(session.cluster, "blue", "filter")
    session.settle()
    out = session.drain_output()
    # The daemon relaunches the filter and the controller hears about
    # the new incarnation rather than a death...
    assert "WARNING: filter 'f1' on blue was relaunched" in out
    assert "DONE: filter 'f1' terminated" not in out
    # ...and the metered computation still completes normally.
    assert "DONE: process dgramproducer in job 'j' terminated: reason: normal" in out


def test_metered_process_survives_filter_death():
    """After the filter dies the meter connection is half dead; the
    metered process must not notice (transparency under failure)."""
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 50 64 2")
    session.command("setflags j all immediate")
    session.command("startjob j")
    session.settle(40)
    _kill(session.cluster, "blue", "filter")
    session.settle()
    red = session.cluster.machine("red")
    producers = [
        p for p in red.procs.values() if p.program_name == "dgramproducer"
    ]
    assert producers[0].exit_reason == defs.EXIT_NORMAL


def test_daemon_death_fails_commands_gracefully():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    _kill(session.cluster, "red", "meterdaemon")
    session.settle(50)
    out = session.command("addprocess j red dgramproducer green 6000 5 64 1")
    assert "not created" in out
    # The controller is still alive and usable on other machines.
    out = session.command("addprocess j green dgramproducer red 6000 5 64 1")
    assert "created" in out


def test_trace_complete_across_filter_death():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 100 64 5")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(120)
    _kill(session.cluster, "blue", "filter")
    session.settle()
    # Supervision relaunched the filter, the controller repointed the
    # meter at it, and the kernel's resend window covered the gap: the
    # final log holds every metered send, exactly once.
    records = session.read_trace("f1")
    sends = [r for r in records if r["event"] == "send"]
    assert len(sends) == 100


def test_externally_killed_process_reported_as_signaled():
    """Somebody (here: root, outside the measurement system) kills a
    running job process; the daemon's SIGCHLD path tells the controller
    with reason 'signaled'."""
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red nameserver 5353")
    session.command("startjob j")
    session.settle(50)
    _kill(session.cluster, "red", "nameserver")
    session.settle(100)
    out = session.drain_output()
    assert (
        "DONE: process nameserver in job 'j' terminated: reason: signaled"
        in out
    )
    # The record moved to killed; the job can now be removed silently.
    assert "killed" in session.command("jobs j")


def test_acquired_process_keeps_running_after_controller_dies():
    session = _make_session()
    target = session.cluster.spawn(
        "red",
        __import__("repro.programs.server", fromlist=["name_server"]).name_server,
        argv=["5353"],
        uid=session.uid,
        program_name="nameserver",
    )
    session.settle(20)
    session.command("filter f1 blue")
    session.command("newjob w")
    session.command("acquire w red {0}".format(target.pid))
    session.command("die")
    session.command("die")  # confirm past the active-process warning
    session.settle(100)
    assert not session.controller_alive()
    assert target.state != defs.PROC_ZOMBIE


def test_meter_events_during_daemon_absence_are_unaffected():
    """Meter messages flow directly from kernel to filter; the daemon
    is only a control-plane actor.  Killing it mid-run must not stop
    event collection."""
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 60 64 4")
    session.command("setflags j send immediate")
    session.command("startjob j")
    session.settle(80)
    before = len(session.read_trace("f1"))
    _kill(session.cluster, "red", "meterdaemon")
    session.settle()
    after = len(session.read_trace("f1"))
    assert after > before
    assert after >= 60
