"""Simulated internetwork.

Carries two services matching 4.2BSD IPC semantics (paper Section 3.1):

- *datagrams*: delivery "not guaranteed, though it is likely", and a set
  of datagrams may arrive out of order;
- *streams*: reliable, ordered byte channels (connection establishment
  and flow control live in the kernel socket layer; the network provides
  a reliable in-order packet channel per connection).

Socket naming follows Section 3.5.4: a host may sit on several networks
and therefore have several addresses, so processes exchange the *literal
host name* plus port number, never a raw address.
"""

from repro.net.addresses import (
    AF_INET,
    AF_PAIR,
    AF_UNIX,
    InternetName,
    PairName,
    SocketName,
    UnixName,
    decode_name,
    parse_name,
)
from repro.net.hosts import Host, HostTable
from repro.net.network import Network, NetworkParams

__all__ = [
    "AF_INET",
    "AF_PAIR",
    "AF_UNIX",
    "InternetName",
    "PairName",
    "SocketName",
    "UnixName",
    "decode_name",
    "parse_name",
    "Host",
    "HostTable",
    "Network",
    "NetworkParams",
]
