"""Daemon death and return, end to end: the controller's liveness
probes notice both transitions on their own.

The degradation half is also covered by the chaos test; what this file
pins down is the *recovery* half -- a restarted meterdaemon (init
bringing it back) is noticed by the bounded recovery probes, the
machine un-degrades with one warning, and the reconcile pass squares
the controller's records against what the fresh daemon reports.
"""

from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.faults import FaultInjector, FaultPlan
from repro.programs import install_all

SEED = 77


def _run(plan_builder, seed=SEED):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red nameserver 5353")
    session.command("startjob j")
    now = cluster.sim.now
    plan = plan_builder(now)
    FaultInjector(cluster, plan, session=session).arm()
    session.settle()
    return session


def test_restarted_daemon_is_noticed_and_undegraded_automatically():
    session = _run(
        lambda now: (
            FaultPlan()
            .kill_daemon(now + 20.0, "red")
            .restart_daemon(now + 900.0, "red")
        )
    )
    transcript = session.transcript()
    degraded = "WARNING: meterdaemon on 'red' is not responding"
    recovered = "WARNING: meterdaemon on 'red' is responding again"
    # Both transitions happened, in order, exactly once, and neither
    # needed an operator command (they are transcript-only lines).
    assert transcript.count(degraded) == 1
    assert transcript.count(recovered) == 1
    assert transcript.index(degraded) < transcript.index(recovered)
    # The machine is usable and no longer listed as degraded.
    jobs = session.command("jobs j")
    assert "degraded" not in jobs
    assert "nameserver" in jobs


def test_daemon_that_stays_dead_probes_to_dormancy_not_forever():
    session = _run(lambda now: FaultPlan().kill_daemon(now + 20.0, "red"))
    # settle() returned: the probe schedule went dormant instead of
    # keeping the event loop alive forever (bounded probe traffic).
    transcript = session.transcript()
    assert "WARNING: meterdaemon on 'red' is not responding" in transcript
    assert "responding again" not in transcript
    jobs = session.command("jobs j")
    assert "degraded machines (meterdaemon not responding): red" in jobs


def test_machine_unreachable_during_filter_restart_drains_on_resume():
    """The worst-ordered pileup: the filter dies, and by the time its
    replacement is up the metered machine's daemon is dead too, so the
    restart's REMETER never lands there.  The process dies while
    disconnected (its records spool as orphans under the OLD filter
    port), the controller crashes, and the daemon only comes back
    later.  ``resume`` must reconcile the machine against the
    *current* filter port AND drain the old-port spools -- every
    record reaches the trace."""
    cluster = Cluster(seed=99)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red dgramproducer green 6000 30 64 5")
    session.command("setflags j send termproc immediate")
    session.command("startjob j")
    now = cluster.sim.now
    plan = (
        FaultPlan()
        .kill_filter(now + 25.0, "blue")
        .kill_daemon(now + 60.0, "red")
        .kill_controller(now + 90.0)
        .restart_controller(now + 150.0)
        .restart_daemon(now + 500.0, "red")
    )
    FaultInjector(cluster, plan, session=session).arm()
    session.settle()
    resume_out = session.command("resume")
    session.settle()
    assert "resumed 1 filter(s) and 1 job(s)" in resume_out
    transcript = session.transcript()
    assert "WARNING: filter 'f1' on blue was relaunched" in transcript
    done = "DONE: process dgramproducer in job 'j' terminated"
    assert transcript.count(done) == 1
    records = session.read_trace("f1")
    sends = [r for r in records if r["event"] == "send"]
    ends = [r for r in records if r["event"] == "termproc"]
    assert len(sends) == 30
    assert len(ends) == 1
