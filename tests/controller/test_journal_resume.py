"""The controller's session journal and the ``resume`` command.

Unit layer: ``journal.replay`` folds a journal's effect entries into
the filters/jobs a fresh controller should adopt, tolerating torn
tails and junk lines (the journal is written by a process that may die
mid-line).

End-to-end layer: kill the controller mid-session, start a fresh one
on the same terminal, type ``resume`` -- the session comes back, the
machines' daemons re-register the surviving processes against the new
controller's notification port, and deaths that happened while nobody
was listening are reported exactly once.
"""

from repro.controller import journal, states
from repro.core.cluster import Cluster
from repro.core.session import MeasurementSession
from repro.kernel import defs
from repro.programs import install_all


# ----------------------------------------------------------------------
# replay unit tests
# ----------------------------------------------------------------------


def _entries(*pairs):
    text = "".join(journal.encode_entry(op, **fields) for op, fields in pairs)
    return journal.parse_journal(text)


def test_replay_rebuilds_filters_and_jobs():
    replayed = journal.replay(_entries(
        ("filter", {"name": "f1", "machine": "blue", "pid": 7,
                    "meter_host": "blue", "meter_port": 1030,
                    "log_path": "/usr/tmp/f1.log"}),
        ("newjob", {"name": "j", "filtername": "f1", "number": 1}),
        ("process", {"jobname": "j", "procname": "worker", "machine": "red",
                     "pid": 12, "state": states.RUNNING, "flags": 1}),
        ("flags", {"jobname": "j", "flags": 3, "flag_order": ["send", "termproc"]}),
    ))
    assert not replayed.clean_exit
    assert replayed.filter_order == ["f1"]
    info = replayed.filters["f1"]
    assert (info.machine, info.pid, info.meter_port) == ("blue", 7, 1030)
    job = replayed.jobs["j"]
    assert job.flags == 3
    assert job.flag_order == ["send", "termproc"]
    record = job.find_process("worker")
    assert (record.machine, record.pid) == ("red", 12)
    assert record.state == states.RUNNING
    assert record.flags == 3  # flag changes propagate to live records
    assert replayed.next_job_number == 2


def test_replay_filter_restart_tracks_the_latest_incarnation():
    replayed = journal.replay(_entries(
        ("filter", {"name": "f1", "machine": "blue", "pid": 7,
                    "meter_host": "blue", "meter_port": 1030,
                    "log_path": "/usr/tmp/f1.log"}),
        ("filter-restart", {"name": "f1", "pid": 9, "meter_port": 1042}),
    ))
    info = replayed.filters["f1"]
    assert (info.pid, info.meter_port) == (9, 1042)


def test_replay_state_and_removals():
    replayed = journal.replay(_entries(
        ("newjob", {"name": "j", "filtername": "f1", "number": 1}),
        ("process", {"jobname": "j", "procname": "a", "machine": "red",
                     "pid": 1, "state": states.RUNNING, "flags": 0}),
        ("process", {"jobname": "j", "procname": "b", "machine": "green",
                     "pid": 2, "state": states.RUNNING, "flags": 0}),
        ("state", {"jobname": "j", "procname": "a", "state": states.KILLED}),
        ("removeprocess", {"jobname": "j", "procname": "b"}),
        ("newjob", {"name": "k", "filtername": "f1", "number": 2}),
        ("removejob", {"name": "k"}),
    ))
    job = replayed.jobs["j"]
    assert job.find_process("a").state == states.KILLED
    assert job.find_process("b") is None
    assert "k" not in replayed.jobs
    assert replayed.next_job_number == 3


def test_replay_clean_exit_yields_nothing_to_recover():
    replayed = journal.replay(_entries(
        ("filter", {"name": "f1", "machine": "blue", "pid": 7,
                    "meter_host": "blue", "meter_port": 1030,
                    "log_path": "/usr/tmp/f1.log"}),
        ("die", {}),
    ))
    assert replayed.clean_exit
    assert not replayed.filters


def test_parse_skips_torn_tail_and_junk():
    text = (
        journal.encode_entry("newjob", name="j", filtername="f1", number=1)
        + "not json at all\n"
        + journal.encode_entry("process", jobname="j", procname="a",
                               machine="red", pid=1,
                               state=states.RUNNING, flags=0)
        + '{"op": "state", "jobname": "j", "procn'  # torn mid-write
    )
    entries = journal.parse_journal(text)
    assert [e.get("op") for e in entries] == ["newjob", "process"]
    replayed = journal.replay(entries)
    assert replayed.jobs["j"].find_process("a").state == states.RUNNING


# ----------------------------------------------------------------------
# end to end: crash, restart, resume
# ----------------------------------------------------------------------


def _make_session(seed=59):
    cluster = Cluster(seed=seed)
    session = MeasurementSession(cluster, control_machine="yellow")
    install_all(session)
    return session


def _kill(cluster, machine_name, program_name):
    machine = cluster.machine(machine_name)
    for proc in list(machine.procs.values()):
        if proc.program_name == program_name and proc.state != defs.PROC_ZOMBIE:
            machine.post_signal(proc, defs.SIGKILL)


def test_resume_restores_session_and_reregisters_notifications():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red nameserver 5353")
    session.command("startjob j")
    session.settle(50)

    session.restart_controller()
    out = session.command("resume")
    assert "resumed 1 filter(s) and 1 job(s)" in out
    jobs = session.command("jobs j")
    assert "nameserver" in jobs and "running" in jobs

    # The daemon re-registered the adopted process against the NEW
    # controller: its eventual death reaches this incarnation's tty.
    _kill(session.cluster, "red", "nameserver")
    session.settle(200)
    assert (
        "DONE: process nameserver in job 'j' terminated: reason: signaled"
        in session.drain_output()
    )


def test_resume_reports_processes_that_died_while_controller_was_down():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("newjob j")
    session.command("addprocess j red nameserver 5353")
    session.command("startjob j")
    session.settle(50)

    # The controller dies; then the process dies with nobody listening
    # (the daemon's termination notification has no one to reach).
    _kill(session.cluster, "yellow", "control")
    session.settle(50)
    _kill(session.cluster, "red", "nameserver")
    session.settle(200)

    session.restart_controller()
    out = session.command("resume")
    assert "resumed 1 filter(s) and 1 job(s)" in out
    transcript = session.transcript()
    line = (
        "DONE: process nameserver in job 'j' terminated: "
        "reason: lost while machine was degraded"
    )
    assert transcript.count(line) == 1
    assert "killed" in session.command("jobs j")


def test_resume_refuses_a_controller_with_live_state():
    session = _make_session()
    session.command("filter f1 blue")
    out = session.command("resume")
    assert "already has session state" in out


def test_resume_after_clean_exit_recovers_nothing():
    session = _make_session()
    session.command("filter f1 blue")
    session.command("die")
    session.settle(50)
    assert not session.controller_alive()
    session.restart_controller()
    out = session.command("resume")
    assert "resume: nothing to recover" in out
