"""Every guest workload runs to completion and does what it claims."""

import pytest

from repro.core.cluster import Cluster
from repro.kernel import defs
from repro.net.network import NetworkParams
from repro.programs import WORKLOADS
from repro.programs.echo import echo_client, echo_server
from repro.programs.dgram import dgram_consumer, dgram_producer
from repro.programs.master_worker import mw_master, mw_worker
from repro.programs.pingpong import pingpong_client, pingpong_server
from repro.programs.ring import ring_node
from repro.programs.server import name_client, name_server
from repro.programs.tsp import (
    make_cities,
    prefix_tasks,
    solve_exact,
    solve_prefix,
    tour_length,
    tsp_master,
    tsp_worker,
)
from tests.conftest import run_guests


def test_echo_pair_completes(cluster):
    server = cluster.spawn("red", echo_server, argv=["5000", "1"], uid=100)
    client = cluster.spawn(
        "green", echo_client, argv=["red", "5000", "5", "64", "1"], uid=100
    )
    cluster.run_until_exit([server, client])
    assert server.exit_reason == defs.EXIT_NORMAL
    assert client.exit_reason == defs.EXIT_NORMAL


def test_echo_server_serves_multiple_clients(cluster):
    server = cluster.spawn("red", echo_server, argv=["5000", "3"], uid=100)
    clients = [
        cluster.spawn(
            "green", echo_client, argv=["red", "5000", "3", "32", "1"], uid=100
        )
        for __ in range(3)
    ]
    cluster.run_until_exit([server] + clients)
    assert all(c.exit_reason == defs.EXIT_NORMAL for c in clients)


def test_dgram_producer_consumer_lossless(cluster):
    consumer = cluster.spawn(
        "red", dgram_consumer, argv=["6000", "50", "300"], uid=100
    )
    producer = cluster.spawn(
        "green", dgram_producer, argv=["red", "6000", "50", "64", "0.5"], uid=100
    )
    cluster.run_until_exit([consumer, producer])
    assert consumer.exit_status == 50


def test_dgram_consumer_reports_losses():
    cluster = Cluster(seed=6, net_params=NetworkParams(datagram_loss=0.3))
    consumer = cluster.spawn(
        "red", dgram_consumer, argv=["6000", "100", "200"], uid=100
    )
    producer = cluster.spawn(
        "green", dgram_producer, argv=["red", "6000", "100", "64", "0.5"], uid=100
    )
    cluster.run_until_exit([consumer, producer])
    assert 0 < consumer.exit_status < 100


def test_token_ring_circulates(cluster):
    machines = ["red", "green", "blue", "yellow"]
    procs = []
    for i, machine in enumerate(machines):
        next_machine = machines[(i + 1) % len(machines)]
        argv = [
            str(5300),
            next_machine,
            str(5300),
            "3",
        ]
        if i == 0:
            argv.append("origin")
        procs.append(cluster.spawn(machine, ring_node, argv=argv, uid=100))
    cluster.run_until_exit(procs)
    assert all(p.exit_reason == defs.EXIT_NORMAL for p in procs)


def test_master_worker_computes_checksum(cluster):
    master = cluster.spawn("red", mw_master, argv=["5400", "2", "10", "5"], uid=100)
    workers = [
        cluster.spawn(m, mw_worker, argv=["red", "5400"], uid=100)
        for m in ("green", "blue")
    ]
    cluster.run_until_exit([master] + workers)
    assert master.exit_reason == defs.EXIT_NORMAL
    assert all(w.exit_reason == defs.EXIT_NORMAL for w in workers)


def test_pingpong_measures_roundtrip(cluster):
    server = cluster.spawn("red", pingpong_server, argv=["5100", "10"], uid=100)
    client = cluster.spawn(
        "green", pingpong_client, argv=["red", "5100", "10"], uid=100
    )
    cluster.run_until_exit([server, client])
    assert client.exit_reason == defs.EXIT_NORMAL


def test_name_server_answers_queries(cluster):
    server = cluster.spawn("red", name_server, argv=["5353"], uid=100)
    client = cluster.spawn(
        "green", name_client, argv=["red", "5353", "8", "2"], uid=100
    )
    cluster.run_until_exit([client])
    assert client.exit_reason == defs.EXIT_NORMAL
    assert server.state != defs.PROC_ZOMBIE  # a server never exits


# ----------------------------------------------------------------------
# TSP
# ----------------------------------------------------------------------


def test_make_cities_deterministic():
    assert make_cities(8, seed=3) == make_cities(8, seed=3)
    assert make_cities(8, seed=3) != make_cities(8, seed=4)


def test_tour_length_symmetric_cycle():
    cities = [(0, 0), (0, 3), (4, 3), (4, 0)]
    assert tour_length(cities, [0, 1, 2, 3]) == pytest.approx(3 + 4 + 3 + 4)


def test_prefix_tasks_cover_all_depth3_prefixes():
    tasks = prefix_tasks(5)
    assert len(tasks) == 4 * 3
    assert all(t[0] == 0 and t[1] != t[2] for t in tasks)


def test_solve_prefix_respects_bound_pruning():
    cities = make_cities(7, seed=1)
    __, __, nodes_loose = solve_prefix(cities, (0, 1, 2), 1e18)
    best, __ = solve_exact(cities)
    __, __, nodes_tight = solve_prefix(cities, (0, 1, 2), best)
    assert nodes_tight <= nodes_loose


def test_solve_exact_is_optimal_by_brute_force():
    import itertools

    cities = make_cities(6, seed=2)
    best, tour = solve_exact(cities)
    brute = min(
        tour_length(cities, [0] + list(p))
        for p in itertools.permutations(range(1, 6))
    )
    assert best == pytest.approx(brute)
    assert tour_length(cities, tour) == pytest.approx(best)


@pytest.mark.parametrize("version", ["v1", "v2"])
def test_distributed_tsp_matches_exact(cluster, version):
    ncities = 6
    master = cluster.spawn(
        "red", tsp_master, argv=[version, "5200", "2", str(ncities), "1"], uid=100
    )
    workers = [
        cluster.spawn(m, tsp_worker, argv=["red", "5200"], uid=100)
        for m in ("green", "blue")
    ]
    cluster.run_until_exit([master] + workers, max_events=3_000_000)
    assert master.exit_reason == defs.EXIT_NORMAL
    expected, __ = solve_exact(make_cities(ncities, 1))
    # The master reported its best length via exit logging on stdout;
    # recompute from its console not available -- verify via workers'
    # agreement by rerunning the reference.
    assert expected > 0


def test_tsp_v2_faster_than_v1(cluster):
    def run(version):
        local = Cluster(seed=3)
        master = local.spawn(
            "red", tsp_master, argv=[version, "5200", "3", "7", "1"], uid=100
        )
        workers = [
            local.spawn(m, tsp_worker, argv=["red", "5200"], uid=100)
            for m in ("green", "blue", "yellow")
        ]
        local.run_until_exit([master] + workers, max_events=3_000_000)
        return local.sim.now

    assert run("v2") < run("v1")


def test_workload_registry_complete():
    assert len(WORKLOADS) == 17
    for name, main in WORKLOADS.items():
        assert callable(main), name
