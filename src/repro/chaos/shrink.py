"""Automatic schedule shrinking: ddmin over fault events.

Given a failing schedule and a deterministic failure predicate
(``fails(plan) -> bool``), :func:`shrink_plan` reduces the schedule to
a 1-minimal failing core:

1. **Event dropping** -- classic delta debugging (Zeller's ddmin) over
   the event list: try dropping chunks, then complements, halving
   granularity until no single event can be removed.  The result is a
   strict subsequence of the original schedule.
2. **Parameter narrowing** -- for each surviving event, try a ladder of
   simpler parameter values (``flips`` down to 1, ``drop_bytes`` down
   to 1, ``loss`` down the ladder) and snap timestamps onto coarse
   grids, keeping a change only when the schedule still fails.  This
   phase never reorders, adds, or removes events, so the *sequence* of
   faults stays a subsequence of the original.

Everything is deterministic: candidate order is fixed, the predicate is
assumed pure (chaos runs are seeded simulations), and the probe budget
bounds the worst case.  Every probe's plan and outcome is recorded in
the result's ``history`` for post-mortems.
"""

from repro.faults.plan import FaultPlan


class ShrinkResult:
    """The minimal failing schedule plus how it was found."""

    def __init__(self, plan, original_events, probes, history):
        self.plan = plan
        self.original_events = original_events
        self.probes = probes
        self.history = history

    @property
    def final_events(self):
        return len(self.plan)

    def summary(self):
        return (
            "shrunk {0} -> {1} event(s) in {2} probe(s)".format(
                self.original_events, self.final_events, self.probes
            )
        )


class _Prober:
    """Counts probes, enforces the budget, memoizes by canonical form."""

    def __init__(self, fails, machines, max_probes):
        self.fails = fails
        self.machines = machines
        self.max_probes = max_probes
        self.probes = 0
        self.history = []
        self._seen = {}

    def plan_of(self, entries):
        return FaultPlan.from_jsonable(entries, machines=self.machines)

    def failing(self, entries):
        plan = self.plan_of(entries)
        key = plan.to_json()
        if key in self._seen:
            return self._seen[key]
        if self.probes >= self.max_probes:
            # Budget exhausted: treat as passing so the shrink keeps
            # its current (known-failing) candidate and terminates.
            return False
        self.probes += 1
        outcome = bool(self.fails(plan))
        self._seen[key] = outcome
        self.history.append({"events": len(entries), "failed": outcome})
        return outcome


def _ddmin(entries, prober):
    """Zeller's ddmin: returns a 1-minimal failing subsequence."""
    granularity = 2
    while len(entries) >= 2:
        chunk = max(1, len(entries) // granularity)
        reduced = False
        # Subsets first (big jumps), then complements.
        candidates = []
        for start in range(0, len(entries), chunk):
            candidates.append(entries[start : start + chunk])
        if granularity > 2:
            for start in range(0, len(entries), chunk):
                candidates.append(entries[:start] + entries[start + chunk :])
        else:
            # At granularity 2 subsets and complements coincide.
            pass
        for candidate in candidates:
            if len(candidate) == len(entries) or not candidate:
                continue
            if prober.failing(candidate):
                entries = candidate
                granularity = 2
                reduced = True
                break
        if not reduced:
            if granularity >= len(entries):
                break
            granularity = min(len(entries), granularity * 2)
    return entries


_PARAM_LADDERS = {
    "flips": (1, 2),
    "drop_bytes": (1, 8, 32),
    "loss": (1.0, 0.5, 0.25),
    "extra_ms": (5.0, 10.0),
    "duration_ms": (50.0, 100.0),
}

_TIME_GRIDS = (100.0, 20.0)


def _narrow_parameters(entries, prober):
    """Per-event parameter and timestamp simplification; keeps only
    changes under which the schedule still fails."""
    for index in range(len(entries)):
        for key, ladder in _PARAM_LADDERS.items():
            current = entries[index].get(key)
            if current is None:
                continue
            for value in ladder:
                if value == current:
                    break
                candidate = [dict(entry) for entry in entries]
                candidate[index][key] = value
                if prober.failing(candidate):
                    entries = candidate
                    break
    for grid in _TIME_GRIDS:
        for index in range(len(entries)):
            snapped = float(int(entries[index]["at_ms"] / grid) * grid)
            if snapped == entries[index]["at_ms"]:
                continue
            candidate = [dict(entry) for entry in entries]
            candidate[index]["at_ms"] = snapped
            # Snapping must not reorder the schedule's firing order.
            times = [entry["at_ms"] for entry in candidate]
            if times != sorted(times) and _order_changed(entries, candidate):
                continue
            if prober.failing(candidate):
                entries = candidate
    return entries


def _order_changed(before, after):
    """Did time-snapping change the firing order of the schedule?"""

    def firing(entries):
        return [
            entry["kind"]
            for entry in sorted(
                entries, key=lambda e: (e["at_ms"],)
            )
        ]

    return firing(before) != firing(after)


def shrink_plan(plan, fails, max_probes=300, narrow=True):
    """Reduce ``plan`` to a minimal schedule for which ``fails`` still
    holds.  ``fails`` receives a :class:`FaultPlan` and must be
    deterministic.  Raises ``ValueError`` if the input plan does not
    fail (nothing to shrink)."""
    entries = plan.to_jsonable()
    prober = _Prober(fails, plan.machines, max_probes)
    if not prober.failing(entries):
        raise ValueError("plan does not fail its oracle; nothing to shrink")
    entries = _ddmin(entries, prober)
    if narrow:
        entries = _narrow_parameters(entries, prober)
    return ShrinkResult(
        plan=prober.plan_of(entries),
        original_events=len(plan),
        probes=prober.probes,
        history=prober.history,
    )


def is_subsequence(shrunk, original):
    """True when ``shrunk``'s event sequence (kind + targets) appears
    in order within ``original`` -- the shrinker's soundness invariant
    (narrowing may retime events or simplify their numeric parameters,
    but never invents, reorders, or retargets them)."""

    _TARGET_KEYS = ("machine", "program", "path_prefix", "groups")

    def identity(event):
        return (event.kind,) + tuple(
            event.args.get(key) for key in _TARGET_KEYS
        )

    remaining = [identity(event) for event in original.events]
    for event in shrunk.events:
        needle = identity(event)
        while remaining and remaining[0] != needle:
            remaining.pop(0)
        if not remaining:
            return False
        remaining.pop(0)
    return True
