"""Storage fault injection: the FaultyWriter seam and medium faults."""

import pytest

from repro.core.cluster import Cluster
from repro.faults import FaultInjector, FaultPlan, FaultyWriter, StorageFaultPlan
from repro.faults.storage import flip_bit, flip_random_bits
from repro.metering.messages import MessageCodec
from repro.net.addresses import InternetName
from repro.tracestore import (
    CorruptSegmentError,
    StoreReader,
    StoreWriter,
    collect_ops,
)

HOSTS = {1: "red", 2: "green", 3: "blue"}


def _wire(n):
    codec = MessageCodec(HOSTS)
    out = []
    for i in range(n):
        machine = (i % 3) + 1
        dest = InternetName(HOSTS[machine], 6000, machine)
        out.append(
            codec.encode(
                "send",
                machine=machine,
                cpu_time=i * 5,
                proc_time=10,
                pid=100,
                pc=i,
                sock=4,
                msgLength=64,
                destName=dest,
                **codec.name_lengths(destName=dest)
            )
        )
    return out


def _faulty_store(plan, n=12, **writer_kw):
    """Write n records through a FaultyWriter; returns (store, faulty)."""
    writer_kw.setdefault("host_names", HOSTS)
    writer_kw.setdefault("flush_bytes", 1)  # one write op per append
    faulty = FaultyWriter(StoreWriter("/t/s.store", **writer_kw), plan)
    sink = {}
    for raw in _wire(n):
        faulty.append(raw)
        collect_ops(sink, faulty)
    faulty.close()
    collect_ops(sink, faulty)
    return {path: bytes(data) for path, data in sink.items()}, faulty


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------


def test_flip_bit_is_a_self_inverse_xor():
    data = b"\x00\xff\x10"
    once = flip_bit(data, 1, 3)
    assert once != data
    assert flip_bit(once, 1, 3) == data


def test_flip_random_bits_is_seed_deterministic():
    data = bytes(range(64))
    a, flips_a = flip_random_bits(data, 5, seed=42)
    b, flips_b = flip_random_bits(data, 5, seed=42)
    c, __ = flip_random_bits(data, 5, seed=43)
    assert a == b and flips_a == flips_b
    assert c != a


# ----------------------------------------------------------------------
# FaultyWriter at the driver seam
# ----------------------------------------------------------------------


def test_no_faults_is_byte_transparent():
    clean_sink = {}
    writer = StoreWriter("/t/s.store", host_names=HOSTS, flush_bytes=1)
    for raw in _wire(12):
        writer.append(raw)
    writer.close()
    collect_ops(clean_sink, writer)
    store, faulty = _faulty_store(StorageFaultPlan())
    assert store == {p: bytes(d) for p, d in clean_sink.items()}
    assert faulty.bytes_delivered == faulty.bytes_intended
    assert faulty.applied == []


def test_torn_write_cuts_the_stream_and_kills_the_medium():
    store, faulty = _faulty_store(StorageFaultPlan().torn_write(200))
    assert faulty.dead
    assert faulty.bytes_delivered == 200
    assert faulty.bytes_intended > 200  # the writer kept believing
    assert any("torn_write" in entry for entry in faulty.applied)
    # What landed before the cut is still a readable prefix.
    reader = StoreReader.from_bytes(store, host_names=HOSTS)
    records = reader.records(salvage=True)
    baseline = [MessageCodec(HOSTS).decode(raw) for raw in _wire(12)]
    assert records == baseline[: len(records)]


def test_bit_flip_lands_on_the_intended_stream_offset():
    plan = StorageFaultPlan().bit_flip(150, bit=2)
    store, faulty = _faulty_store(plan)
    clean, __ = _faulty_store(StorageFaultPlan())
    (path,) = store
    assert store[path] != clean[path]
    assert store[path][150] == clean[path][150] ^ (1 << 2)
    assert sum(a != b for a, b in zip(store[path], clean[path])) == 1
    # Strict read refuses the damaged frame; salvage quantifies it.
    reader = StoreReader.from_bytes(store, host_names=HOSTS)
    with pytest.raises(CorruptSegmentError):
        reader.records()
    reader.records(salvage=True)
    assert not reader.last_stats.loss_free()


def test_short_write_loses_a_mid_stream_range():
    plan = StorageFaultPlan().short_write(100, 30)
    store, faulty = _faulty_store(plan)
    clean, __ = _faulty_store(StorageFaultPlan())
    (path,) = store
    assert len(store[path]) == len(clean[path]) - 30
    assert faulty.bytes_delivered == faulty.bytes_intended - 30
    # Later bytes still landed (shifted): the tail of both streams match.
    assert store[path][-40:] == clean[path][-40:]


def test_drop_flush_loses_exactly_one_write_op():
    plan = StorageFaultPlan().drop_flush(3)
    store, faulty = _faulty_store(plan)
    clean, __ = _faulty_store(StorageFaultPlan())
    (path,) = store
    lost = len(clean[path]) - len(store[path])
    assert lost > 0
    assert faulty.applied and "drop_flush #3" in faulty.applied[0]
    assert faulty.bytes_delivered == faulty.bytes_intended - lost


def test_same_plan_same_seed_damages_identical_bytes():
    def run():
        plan = StorageFaultPlan(seed=9).scatter_bit_flips(4, 300).torn_write(500)
        return _faulty_store(plan)

    store_a, faulty_a = run()
    store_b, faulty_b = run()
    assert store_a == store_b
    assert faulty_a.applied == faulty_b.applied
    assert faulty_a.plan.describe() == faulty_b.plan.describe()


def test_faulty_writer_proxies_the_inner_writer():
    faulty = FaultyWriter(
        StoreWriter("/t/s.store", host_names=HOSTS), StorageFaultPlan()
    )
    for raw in _wire(3):
        faulty.append(raw)
    assert faulty.records_appended == 3  # attribute reaches the writer


# ----------------------------------------------------------------------
# Medium-level faults on a simulated machine's filesystem
# ----------------------------------------------------------------------


def _seed_fs_store(fs, base="/usr/tmp/f1.store"):
    writer = StoreWriter(base, host_names=HOSTS, flush_bytes=1)
    for raw in _wire(10):
        writer.append(raw)
    sink = {}
    collect_ops(sink, writer)  # unsealed tail, as a live filter leaves it
    for path, data in sink.items():
        node = fs.create(path, 0)
        node.data[:] = data
    return base


def test_fault_plan_storage_events_fire_on_the_simulated_disk():
    cluster = Cluster(seed=3)
    fs = cluster.machine("red").fs
    base = _seed_fs_store(fs)
    before = bytes(fs.node(base + ".seg00000").data)
    plan = (
        FaultPlan()
        .storage_torn_write(10.0, "red", base, drop_bytes=5)
        .storage_bit_rot(20.0, "red", base, flips=2, seed=11)
    )
    injector = FaultInjector(cluster, plan).arm()
    cluster.run(until_ms=50.0)
    after = bytes(fs.node(base + ".seg00000").data)
    assert len(after) == len(before) - 5
    assert after != before[:-5]  # the bit rot landed too
    applied = injector.describe_applied()
    assert any("storage_torn_write" in line for line in applied)
    assert any("flipped 2 bit(s)" in line for line in applied)
    # The damaged tail still reads as a salvageable store.
    reader = StoreReader.from_fs(fs, base, host_names=HOSTS)
    records = reader.records(salvage=True)
    baseline = [MessageCodec(HOSTS).decode(raw) for raw in _wire(10)]
    assert all(record in baseline for record in records)


def test_storage_bit_rot_is_seed_deterministic_across_runs():
    def run():
        cluster = Cluster(seed=3)
        fs = cluster.machine("red").fs
        base = _seed_fs_store(fs)
        plan = FaultPlan().storage_bit_rot(5.0, "red", base, flips=3, seed=7)
        FaultInjector(cluster, plan).arm()
        cluster.run(until_ms=10.0)
        return bytes(fs.node(base + ".seg00000").data)

    assert run() == run()


def test_drop_flush_event_arms_a_one_shot_medium_lie():
    cluster = Cluster(seed=3)
    machine = cluster.machine("red")
    fs = machine.fs
    plan = FaultPlan().storage_drop_flush(1.0, "red", "/usr/tmp/f1")
    FaultInjector(cluster, plan).arm()
    cluster.run(until_ms=5.0)
    assert fs.write_fault is not None
    # The hook eats exactly one matching write, then disarms.
    node = fs.create("/usr/tmp/f1.store.seg00000", 0)
    kept = fs.write_fault("/usr/tmp/f1.store.seg00000", b"hello")
    assert kept == b""
    assert fs.write_fault is None
