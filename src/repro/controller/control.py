"""The controller guest program: the users' interface (Section 4.3).

Runs on the machine the programmer chose, reads commands from the
terminal (or from sourced scripts), performs them by RPC to the
meterdaemons, and reports asynchronous state changes ("DONE: process B
in job 'foo' terminated: reason: normal").
"""

import json

from repro import guestlib
from repro.controller import health, journal, states
from repro.controller.model import FilterInfo, Job, ProcessRecord
from repro.daemon import protocol
from repro.daemon.meterdaemon import METERDAEMON_PORT
from repro.kernel import defs
from repro.kernel.errno import SyscallError, errno_name
from repro.metering import flags as mflags
from repro.streaming.engine import format_firing, format_snapshot
from repro.streaming.queries import QUERY_KINDS

PROMPT = "<Control> "

DEFAULT_FILTER_FILE = "filter"
DEFAULT_DESCRIPTIONS = "descriptions"
DEFAULT_TEMPLATES = "templates"
MAX_SOURCE_DEPTH = 16

#: Characters allowed in command parameters (Section 4.3 plus '-' for
#: flag resets and '_' for file names).
_PARAM_CHARS = set(
    "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ/.-_*"
)

#: The live-analysis commands additionally take rule/comparison
#: characters (watch specifications such as ``rule=type=send,msgLength>=400``).
_WATCH_PARAM_CHARS = _PARAM_CHARS | set("=<>!,:")

HELP_TEXT = """\
Commands:
  help                                           this menu
  filter [<name> [<machine> [<file> [<descr> [<templates>]]]]]
                                                 create or list filters
  newjob <jobname> [<filtername>]                create a job
  addprocess <jobname> <machine> <file> [<parms>...]   add a process
  acquire <jobname> <machine> <pid>              meter a running process
  setflags <jobname> <flag1> [<flag2>...]        set metering flags
  startjob <jobname>                             start the job
  stopjob <jobname>                              stop the job
  removejob <jobname>                            remove the job
  removeprocess <jobname> <procname>             remove one process
  jobs [<jobname>...]                            show job status
  getlog <filtername> <destfile>                 fetch a trace file
  source <filename>                              run a command script
  sink [<filename>]                              redirect output
  input <jobname> <procname> <word>...           send a line to a
                                                 process' standard input
  stdinfile <jobname> <procname> <filename>      redirect a file into a
                                                 process' standard input
  stats [<filtername>] [digest]                  live statistics from the
                                                 filter's streaming engine
  watch add [<filtername>] <kind> [<k>=<v>...]   register a continuous
                                                 query (kinds: undelivered
                                                 pattern quiet rate)
  watch [poll]                                   report new watch firings
  watch list                                     list registered watches
  watch rm <id>                                  remove a watch
  resume [<journalfile>]                         rebuild the session of a
                                                 crashed controller
  die                                            exit the controller
Metering flags:
  fork termproc send receivecall receive socket dup destsocket
  accept connect all immediate  (prefix '-' to reset)"""


class _InputSource:
    def __init__(self, fd, is_tty):
        self.fd = fd
        self.is_tty = is_tty
        self.buffered = [b""]


class ControllerState:
    """All state of one controller instance."""

    def __init__(self):
        self.uid = None
        self.hostname = None
        #: Per-session log placement (argv; None means the daemon's
        #: default /usr/tmp) and format ("text" or "store").
        self.log_directory = None
        self.log_format = "text"
        self.notify_listen = None
        self.notify_port = None
        #: notify conn fd -> reassembly buffer
        self.notify_buffers = {}
        self.filters = {}  # name -> FilterInfo
        self.filter_order = []  # creation order (for the default filter)
        self.jobs = {}  # name -> Job
        #: Daemon liveness: heartbeats, degradation, recovery probes.
        self.health = health.HealthMonitor()
        #: machine -> boot epoch from its last ping reply.  A changed
        #: epoch means the daemon was restarted behind our back -- the
        #: whole outage fit between two heartbeats, so no degraded
        #: transition will ever fire for it.
        self.daemon_boots = {}
        #: machine -> {filtername: set of retired meter ports} for
        #: REMETER exchanges that failed because the machine was
        #: unreachable.  Its kernel may hold final batches spooled
        #: under those ports, and only its daemon can drain them --
        #: the debt keeps the machine on the heartbeat schedule until
        #: a recovery pays it (see _settle_owed_remeters).
        self.owed_remeters = {}
        self.next_job_number = 1
        self.input_stack = []
        self.sink_fd = None  # output file fd, or None for the terminal
        #: Continuous queries: watch id -> {"filtername", "spec"}, plus
        #: per-filter poll cursors into the engine's firing sequence.
        self.watches = {}
        self.next_watch_id = 1
        self.watch_seqs = {}
        #: Session journal (opened lazily; -1 means unavailable).
        self.journal_fd = None
        self.die_warned = False
        self.dead = False

    def default_filter(self):
        """"If no filter is indicated, the control program uses the
        default filter process" -- the most recently created one."""
        if not self.filter_order:
            return None
        return self.filters[self.filter_order[-1]]

    def find_record(self, machine, pid):
        for job in self.jobs.values():
            for record in job.processes:
                if record.machine == machine and record.pid == pid:
                    return job, record
        return None, None

    def active_count(self):
        return sum(len(job.active_processes()) for job in self.jobs.values())


def _watched_machines(state):
    """Machines hosting a piece of the session (a filter or a live
    process record), plus machines owing a remeter: the heartbeat set.
    A machine whose processes all died can still hold their final
    batches spooled in its kernel -- it must stay probed until its
    daemon comes back and the drain succeeds."""
    watched = {info.machine for info in state.filters.values()}
    for job in state.jobs.values():
        for record in job.processes:
            if record.state != states.KILLED:
                watched.add(record.machine)
    watched.update(state.owed_remeters)
    return watched


def _journal(sys, ctl, op, **fields):
    """Append one entry to the session journal.  Best-effort: a
    session with no writable journal still runs, it just cannot be
    resumed after a controller crash.  (The controller state argument
    is named ``ctl`` here so entries may carry a ``state=`` field.)"""
    if ctl.journal_fd is None:
        try:
            ctl.journal_fd = yield sys.open(
                journal.journal_path(ctl.log_directory), "a"
            )
        except SyscallError:
            ctl.journal_fd = -1
    if ctl.journal_fd == -1:
        return
    entry = journal.encode_entry(op, **fields)
    yield sys.write(ctl.journal_fd, entry.encode("ascii"))


def _journal_state(sys, ctl, job, record):
    """Journal a process state change.  Entries carry machine and pid
    besides the procname: two processes of one job may share a program
    name (the paper's DONE lines name only the program), and a replay
    that resolves by name alone can mark the wrong record -- the
    resumed controller then re-reports a death it already reported."""
    yield from _journal(
        sys,
        ctl,
        "state",
        jobname=job.name,
        procname=record.procname,
        machine=record.machine,
        pid=record.pid,
        state=record.state,
    )


def controller(sys, argv):
    """Guest main for the control process."""
    state = ControllerState()
    state.uid = yield sys.getuid()
    state.hostname = yield sys.hostname()
    if len(argv) > 1 and argv[1]:
        state.log_directory = argv[1]
    if len(argv) > 2 and argv[2]:
        state.log_format = argv[2]

    # The notification socket: daemons connect here to report process
    # state changes (Section 3.5.1).
    nfd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(nfd, ("", 0))
    yield sys.listen(nfd, defs.SOMAXCONN)
    state.notify_listen = nfd
    name = yield sys.getsockname(nfd)
    state.notify_port = name.port

    state.input_stack.append(_InputSource(0, is_tty=True))

    while not state.dead:
        source = state.input_stack[-1]
        if source.is_tty:
            line = yield from _read_tty_line(sys, state, source)
        else:
            yield from _poll_notifications(sys, state)
            line = yield from guestlib.read_line(sys, source.fd, source.buffered)
            if line is None:
                yield sys.close(source.fd)
                state.input_stack.pop()
                continue
        yield from _dispatch(sys, state, line)
    yield sys.exit(0)


# ----------------------------------------------------------------------
# Input and notifications
# ----------------------------------------------------------------------


def _read_tty_line(sys, state, source):
    """Prompt, then wait for a command while servicing notifications
    and running the daemon liveness schedule.

    The select timeout is the next heartbeat or recovery-probe
    deadline; when every watched machine is dormant (session idle, no
    degraded machines mid-episode) it is None and the controller
    blocks -- the quiescence the simulator's settle() depends on.
    """
    yield sys.write(1, PROMPT.encode("ascii"))
    while True:
        now = yield sys.gettimeofday()
        watched = _watched_machines(state)
        for machine in watched:
            state.health.watch(machine, now)
        deadline = state.health.next_wakeup(watched)
        timeout_ms = None if deadline is None else max(0.0, deadline - now)
        fds = [source.fd, state.notify_listen] + list(state.notify_buffers)
        ready, __ = yield sys.select(fds, timeout_ms=timeout_ms)
        yield from _handle_notification_fds(sys, state, ready)
        if source.fd in ready:
            line = yield from guestlib.read_line(sys, source.fd, source.buffered)
            if line is None:
                return "die"  # control-D
            return line
        now = yield sys.gettimeofday()
        for machine in state.health.due(now, _watched_machines(state)):
            yield from _probe_machine(sys, state, machine)


def _poll_notifications(sys, state):
    fds = [state.notify_listen] + list(state.notify_buffers)
    ready, __ = yield sys.select(fds, timeout_ms=0)
    yield from _handle_notification_fds(sys, state, ready)


def _handle_notification_fds(sys, state, ready):
    for fd in ready:
        if fd == state.notify_listen:
            conn, __ = yield sys.accept(state.notify_listen)
            state.notify_buffers[conn] = b""
        elif fd in state.notify_buffers:
            try:
                data = yield sys.read(fd, 4096)
            except SyscallError:
                data = b""  # daemon's machine died mid-notification
            if not data:
                yield sys.close(fd)
                del state.notify_buffers[fd]
                continue
            buf = state.notify_buffers[fd] + data
            while len(buf) >= 4:
                length = int.from_bytes(buf[:4], "big")
                if len(buf) - 4 < length:
                    break
                payload = buf[4 : 4 + length]
                buf = buf[4 + length :]
                yield from _handle_notification(sys, state, payload)
            state.notify_buffers[fd] = buf


def _handle_notification(sys, state, payload):
    try:
        msg_type, body = protocol.decode(payload)
    except Exception:
        return  # junk on the notification port; ignore it
    if msg_type == protocol.TERMINATION_NOTIFY:
        yield from _on_termination(sys, state, body)
    elif msg_type == protocol.FILTER_RESTART_NOTIFY:
        yield from _on_filter_restart(sys, state, body)
    elif msg_type == protocol.OUTPUT_NOTIFY:
        text = body.get("data", "").rstrip("\n")
        for line in text.splitlines():
            yield from _emit(
                sys, state, "{0}: {1}".format(body.get("procname"), line)
            )


def _on_termination(sys, state, body):
    machine, pid = body.get("machine"), body.get("pid")
    # A filter died?
    for info in list(state.filters.values()):
        if info.machine == machine and info.pid == pid:
            yield from _emit(
                sys,
                state,
                "DONE: filter '{0}' terminated: reason: {1}".format(
                    info.name, body.get("reason")
                ),
            )
            yield from _journal(sys, state, "filter-gone", name=info.name)
            del state.filters[info.name]
            state.filter_order.remove(info.name)
            return
    job, record = state.find_record(machine, pid)
    if record is None or record.state == states.KILLED:
        # Unknown pid, or a duplicate: the daemon retries notifications
        # and the reconcile path may already have reported this death.
        return
    record.state = states.KILLED
    yield from _journal_state(sys, state, job, record)
    yield from _emit(
        sys,
        state,
        "DONE: process {0} in job '{1}' terminated: reason: {2}".format(
            record.procname, job.name, body.get("reason")
        ),
    )


def _on_filter_restart(sys, state, body):
    """The meterdaemon relaunched a crashed filter (its supervision
    duty): adopt the replacement and repoint every meter at it."""
    info = state.filters.get(body.get("filtername"))
    if info is None or info.machine != body.get("machine"):
        return
    if info.pid != body.get("old_pid") and info.pid != body.get("pid"):
        return  # stale notification for a generation we no longer track
    old_port = body.get("old_port", info.meter_port)
    info.pid = body["pid"]
    info.meter_host = body.get("meter_host", info.meter_host)
    if old_port not in info.past_ports:
        info.past_ports.append(old_port)
    info.meter_port = body["meter_port"]
    yield from _journal(
        sys,
        state,
        "filter-restart",
        name=info.name,
        pid=info.pid,
        meter_port=info.meter_port,
    )
    yield from _emit(
        sys,
        state,
        "WARNING: filter '{0}' on {1} was relaunched: identifier = {2}".format(
            info.name, info.machine, info.pid
        ),
    )
    yield from _repoint_filter(sys, state, info, [old_port])
    yield from _reregister_watches(sys, state, info)


# ----------------------------------------------------------------------
# Output
# ----------------------------------------------------------------------


def _emit(sys, state, text):
    fd = state.sink_fd if state.sink_fd is not None else 1
    yield sys.write(fd, (text + "\n").encode("ascii"))


# ----------------------------------------------------------------------
# RPC to meterdaemons
# ----------------------------------------------------------------------


#: RPC policy: per-call deadline, bounded retries on transient errors,
#: and per-machine health so a dead daemon degrades the machine instead
#: of wedging every later command behind full retry cycles.
RPC_DEADLINE_MS = 1500.0
RPC_ATTEMPTS = 3
RPC_BACKOFF_MS = 40.0
RPC_BACKOFF_CAP_MS = 320.0


def _note_success(sys, state, machine):
    """Record a successful exchange; on a degraded->healthy transition
    emit the recovery warning and reconcile session state with the
    (possibly brand-new) daemon."""
    now = yield sys.gettimeofday()
    if state.health.note_success(machine, now):
        yield from _emit(
            sys,
            state,
            "WARNING: meterdaemon on '{0}' is responding again".format(
                machine
            ),
        )
        yield from _reconcile_machine(sys, state, machine)


def _note_failure(sys, state, machine):
    """Record a failed exchange (the caller already spent its retry
    budget); emit the warning on a healthy->degraded transition."""
    now = yield sys.gettimeofday()
    if state.health.note_failure(machine, now):
        yield from _emit(
            sys,
            state,
            "WARNING: meterdaemon on '{0}' is not responding; "
            "marking machine degraded".format(machine),
        )


def _rpc(sys, state, machine, msg_type, **body):
    """One controller/daemon exchange (Section 3.5.1).

    Returns (reply type, reply body); connection problems surface as an
    ERROR_REPLY so command handlers report rather than crash.

    Robustness: each attempt carries a connect/receive deadline, and
    transient failures (daemon not up yet, path severed) are retried
    with jittered exponential backoff.  Outcomes feed the shared
    :class:`~repro.controller.health.HealthMonitor`: a machine whose
    daemon exhausts the retry budget is marked *degraded* -- later RPCs
    to it fast-fail after a single attempt, and liveness probes take
    over until one succeeds again.  A daemon that hangs up mid-exchange
    is NOT retried -- the request may already have executed (e.g. the
    process may have been created), and repeating it could duplicate
    the side effect.
    """
    body.setdefault("uid", state.uid)
    body.setdefault("control_host", state.hostname)
    body.setdefault("control_port", state.notify_port)
    request = protocol.encode(msg_type, **body)
    now = yield sys.gettimeofday()
    state.health.note_activity(now)
    attempts = 1 if state.health.is_degraded(machine) else RPC_ATTEMPTS
    delay = RPC_BACKOFF_MS
    last_status = None
    for attempt in range(attempts):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, (machine, METERDAEMON_PORT), RPC_DEADLINE_MS)
            yield from guestlib.send_frame(sys, fd, request)
            payload = yield from guestlib.recv_frame_timeout(
                sys, fd, RPC_DEADLINE_MS
            )
        except SyscallError as err:
            yield sys.close(fd)
            last_status = "no meterdaemon on '{0}' ({1})".format(
                machine, errno_name(err.errno)
            )
            if err.errno not in guestlib.TRANSIENT_ERRNOS:
                break
            if attempt + 1 < attempts:
                yield from guestlib.backoff_sleep(sys, delay)
                delay = min(delay * 2.0, RPC_BACKOFF_CAP_MS)
            continue
        yield sys.close(fd)
        if payload is None:
            # Mid-exchange hangup: ambiguous outcome, never retried,
            # and no health transition -- the daemon was reachable.
            return protocol.ERROR_REPLY, {
                "status": "daemon closed the connection"
            }
        recovering = state.health.is_degraded(machine)
        yield from _note_success(sys, state, machine)
        reply_type, reply_body = protocol.decode(payload)
        yield from _observe_daemon_boot(
            sys, state, machine, reply_body, suppress=recovering
        )
        return reply_type, reply_body
    yield from _note_failure(sys, state, machine)
    return protocol.ERROR_REPLY, {"status": last_status}


def _probe_machine(sys, state, machine):
    """One liveness ping (Section 3.5.1's exchange, minimal body).

    Single attempt: the probe schedule itself is the retry loop, with
    the HealthMonitor's backoff between episodes.  Silent except for
    health transitions, so an all-healthy session produces no output.
    """
    request = protocol.encode(
        protocol.PING_REQ,
        uid=state.uid,
        control_host=state.hostname,
        control_port=state.notify_port,
    )
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    ok = False
    payload = None
    try:
        yield sys.connect(
            fd, (machine, METERDAEMON_PORT), health.PROBE_DEADLINE_MS
        )
        yield from guestlib.send_frame(sys, fd, request)
        payload = yield from guestlib.recv_frame_timeout(
            sys, fd, health.PROBE_DEADLINE_MS
        )
        ok = payload is not None
    except SyscallError:
        ok = False
    yield sys.close(fd)
    if ok:
        recovering = state.health.is_degraded(machine)
        yield from _note_success(sys, state, machine)
        try:
            __, body = protocol.decode(payload)
        except Exception:
            body = {}
        yield from _observe_daemon_boot(
            sys, state, machine, body, suppress=recovering
        )
    else:
        yield from _note_failure(sys, state, machine)


def _observe_daemon_boot(sys, state, machine, body, suppress=False):
    """Track the boot epoch every daemon reply carries.  An epoch that
    changed on a machine we believed healthy means the daemon died and
    was replaced entirely inside one heartbeat interval: _note_success
    saw no degraded->healthy transition, so reconcile explicitly -- the
    replacement daemon has empty state and must re-adopt this machine's
    share of the session (and report any child that died in the gap).
    ``suppress`` skips the reconcile when the normal recovery path just
    handled this machine."""
    boot = body.get("boot")
    if boot is None:
        return
    known = state.daemon_boots.get(machine)
    state.daemon_boots[machine] = boot
    if suppress or known is None or boot == known:
        return
    yield from _emit(
        sys,
        state,
        "WARNING: meterdaemon on '{0}' was restarted between "
        "heartbeats; reconciling".format(machine),
    )
    yield from _reconcile_machine(sys, state, machine)


# ----------------------------------------------------------------------
# Recovery: reconcile, respawn, repoint
# ----------------------------------------------------------------------


def _settle_owed_remeters(sys, state, machine):
    """Pay the remeter debt recorded while ``machine`` was unreachable
    during a filter relaunch: processes on it may have died with final
    batches spooled under meter ports the relaunch retired, and only a
    drain aimed at the filter's *current* address recovers them."""
    owed = state.owed_remeters.get(machine)
    if not owed:
        return
    for filtername in sorted(owed):
        info = state.filters.get(filtername)
        if info is None:
            # The filter is gone from the session; there is nothing to
            # aim a drain at any more.
            owed.pop(filtername, None)
            continue
        records = []
        for job in state.jobs.values():
            if job.filtername != filtername:
                continue
            for record in job.processes:
                if (
                    record.machine == machine
                    and record.state != states.KILLED
                ):
                    records.append(
                        {"pid": record.pid, "flags": record.flags}
                    )
        ports = sorted(set(owed[filtername]) | set(info.past_ports))
        yield from _remeter_machine(
            sys, state, info, machine, records, ports
        )
    if not state.owed_remeters.get(machine):
        state.owed_remeters.pop(machine, None)


def _reconcile_machine(sys, state, machine):
    """A machine came back (healed partition or restarted daemon):
    have its daemon adopt the session's processes and filters, then
    square our records with what actually survived."""
    yield from _settle_owed_remeters(sys, state, machine)
    children = []
    for job in state.jobs.values():
        for record in job.processes:
            if record.machine == machine and record.state != states.KILLED:
                children.append(
                    {
                        "pid": record.pid,
                        "jobname": record.jobname,
                        "procname": record.procname,
                        "flags": record.flags,
                    }
                )
    filter_infos = []
    for name in state.filter_order:
        info = state.filters[name]
        if info.machine == machine:
            filter_infos.append(
                {
                    "pid": info.pid,
                    "filtername": info.name,
                    "filterfile": info.filterfile,
                    "log_path": info.log_path,
                    "descriptions": info.descriptions,
                    "templates": info.templates,
                    "meter_port": info.meter_port,
                }
            )
    if not children and not filter_infos:
        return
    reply_type, body = yield from _rpc(
        sys,
        state,
        machine,
        protocol.ADOPT_REQ,
        children=children,
        filters=filter_infos,
    )
    if reply_type != protocol.ADOPT_REPLY or not protocol.is_ok(body):
        return
    for pid in body.get("dead", []):
        job, record = state.find_record(machine, pid)
        if record is None or record.state == states.KILLED:
            continue
        record.state = states.KILLED
        yield from _journal_state(sys, state, job, record)
        yield from _emit(
            sys,
            state,
            "DONE: process {0} in job '{1}' terminated: reason: {2}".format(
                record.procname, job.name, "lost while machine was degraded"
            ),
        )
    respawned = set()
    for filtername in body.get("filters_dead", []):
        info = state.filters.get(filtername)
        if info is not None and info.machine == machine:
            respawned.add(filtername)
            yield from _respawn_filter(sys, state, info)
    # Survivors keep running through a degradation, but a setflags
    # issued during it may never have landed: re-assert.
    for pid in body.get("alive", []):
        __, record = state.find_record(machine, pid)
        if record is not None and record.state != states.KILLED:
            yield from _rpc(
                sys,
                state,
                machine,
                protocol.SETFLAGS_REQ,
                pid=record.pid,
                flags=record.flags,
            )
    # A filter restart this machine slept through left its meters
    # aimed at a dead port and its kernel holding orphaned batches
    # spooled under the old one: re-aim every live meter of the jobs
    # it hosts and drain all earlier ports.  Filters respawned just
    # above already repointed everything, and a filter with no past
    # ports never restarted, so its meters were never stale.
    for name in list(state.filter_order):
        info = state.filters.get(name)
        if info is None or name in respawned or not info.past_ports:
            continue
        records = []
        hosts_jobs = False
        for job in state.jobs.values():
            if job.filtername != name:
                continue
            for record in job.processes:
                if record.machine != machine:
                    continue
                hosts_jobs = True
                if record.state != states.KILLED:
                    records.append(
                        {"pid": record.pid, "flags": record.flags}
                    )
        if hosts_jobs:
            ports = list(
                dict.fromkeys(info.past_ports + [info.meter_port])
            )
            yield from _remeter_machine(
                sys, state, info, machine, records, ports
            )


def _respawn_filter(sys, state, info):
    """A filter died with its daemon: recreate it from the stored spec
    (same log path, so the trace continues where it stopped) and
    repoint every meter at the replacement."""
    request = dict(
        filtername=info.name,
        filterfile=info.filterfile,
        descriptions=info.descriptions,
        templates=info.templates,
        log_format=state.log_format,
    )
    if state.log_directory:
        request["log_directory"] = state.log_directory
    old_port = info.meter_port
    reply_type, body = yield from _rpc(
        sys, state, info.machine, protocol.CREATE_FILTER_REQ, **request
    )
    if reply_type != protocol.CREATE_FILTER_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys,
            state,
            "DONE: filter '{0}' terminated: reason: {1}".format(
                info.name, "could not be relaunched"
            ),
        )
        yield from _journal(sys, state, "filter-gone", name=info.name)
        del state.filters[info.name]
        state.filter_order.remove(info.name)
        return
    info.pid = body["pid"]
    info.meter_host = body["meter_host"]
    if old_port not in info.past_ports:
        info.past_ports.append(old_port)
    info.meter_port = body["meter_port"]
    info.log_path = body["log_path"]
    yield from _journal(
        sys,
        state,
        "filter-restart",
        name=info.name,
        pid=info.pid,
        meter_port=info.meter_port,
    )
    yield from _emit(
        sys,
        state,
        "WARNING: filter '{0}' on {1} was relaunched: identifier = {2}".format(
            info.name, info.machine, info.pid
        ),
    )
    yield from _repoint_filter(sys, state, info, [old_port])
    yield from _reregister_watches(sys, state, info)


def _repoint_filter(sys, state, info, old_ports):
    """A filter has a new meter port: every machine with a process of
    one of its jobs re-aims live meters at it (the kernel resends its
    unacknowledged window; the filter dedups) and drains batches
    orphaned under the old port numbers.  Machines whose processes all
    died still get the drain -- their final batches are waiting."""
    by_machine = {}
    for job in state.jobs.values():
        if job.filtername != info.name:
            continue
        for record in job.processes:
            per = by_machine.setdefault(record.machine, [])
            if record.state != states.KILLED:
                per.append({"pid": record.pid, "flags": record.flags})
    # A machine that was degraded during an EARLIER restart may still
    # hold spools under ports older than the one being replaced now.
    ports = list(dict.fromkeys(list(old_ports) + info.past_ports))
    for machine in sorted(by_machine):
        yield from _remeter_machine(
            sys, state, info, machine, by_machine[machine], ports
        )


def _remeter_machine(sys, state, info, machine, records, old_ports):
    """One REMETER exchange: aim ``records``' meters at the filter's
    current port and drain batches orphaned under ``old_ports``."""
    reply_type, body = yield from _rpc(
        sys,
        state,
        machine,
        protocol.REMETER_REQ,
        records=records,
        filter_host=info.meter_host,
        filter_port=info.meter_port,
        old_ports=list(old_ports),
    )
    if reply_type != protocol.REMETER_REPLY or not protocol.is_ok(body):
        # The machine's kernel may hold batches spooled under the old
        # ports; remember the debt so recovery can drain them at
        # whatever port the filter has by then.
        state.owed_remeters.setdefault(machine, {}).setdefault(
            info.name, set()
        ).update(int(port) for port in old_ports)
        return
    owed = state.owed_remeters.get(machine)
    if owed is not None:
        owed.pop(info.name, None)
        if not owed:
            state.owed_remeters.pop(machine, None)
    for pid in body.get("dead", []):
        job, record = state.find_record(machine, pid)
        if record is None or record.state == states.KILLED:
            continue
        record.state = states.KILLED
        yield from _journal_state(sys, state, job, record)
        yield from _emit(
            sys,
            state,
            "DONE: process {0} in job '{1}' terminated: reason: {2}".format(
                record.procname, job.name, "died during filter restart"
            ),
        )


# ----------------------------------------------------------------------
# Command dispatch
# ----------------------------------------------------------------------


def _valid_params(tokens, allowed=_PARAM_CHARS):
    return all(set(token) <= allowed for token in tokens)


#: Commands whose line is journaled write-ahead (they mutate session
#: state; a crash mid-command leaves the intent on record).
_JOURNALED_COMMANDS = frozenset(
    {
        "filter",
        "newjob",
        "addprocess",
        "add",
        "acquire",
        "setflags",
        "startjob",
        "stopjob",
        "removejob",
        "rmjob",
        "removeprocess",
        "watch",
        "resume",
        "die",
        "exit",
        "bye",
    }
)


def _dispatch(sys, state, line):
    tokens = line.split()
    if not tokens:
        return
    command = tokens[0].lower()
    args = tokens[1:]
    if command != "die":
        state.die_warned = False
    allowed = (
        _WATCH_PARAM_CHARS if command in ("watch", "stats") else _PARAM_CHARS
    )
    if not _valid_params(args, allowed):
        yield from _emit(sys, state, "bad parameter characters in command")
        return
    handler = _COMMANDS.get(command)
    if handler is None:
        yield from _emit(
            sys, state, "unknown command '{0}' (try help)".format(command)
        )
        return
    now = yield sys.gettimeofday()
    state.health.note_activity(now)
    if command in _JOURNALED_COMMANDS:
        yield from _journal(sys, state, "cmd", line=line)
    yield from handler(sys, state, args)


def cmd_help(sys, state, args):
    yield from _emit(sys, state, HELP_TEXT)


def cmd_filter(sys, state, args):
    if not args:
        if not state.filters:
            yield from _emit(sys, state, "no filters")
            return
        for name in state.filter_order:
            info = state.filters[name]
            yield from _emit(
                sys,
                state,
                "filter '{0}': identifier = {1}, machine = {2}".format(
                    info.name, info.pid, info.machine
                ),
            )
        return
    filtername = args[0]
    if filtername in state.filters:
        yield from _emit(
            sys, state, "filter '{0}' already exists".format(filtername)
        )
        return
    machine = args[1] if len(args) > 1 else state.hostname
    filterfile = args[2] if len(args) > 2 else DEFAULT_FILTER_FILE
    descriptions = args[3] if len(args) > 3 else DEFAULT_DESCRIPTIONS
    templates = args[4] if len(args) > 4 else DEFAULT_TEMPLATES
    request = dict(
        filtername=filtername,
        filterfile=filterfile,
        descriptions=descriptions,
        templates=templates,
        log_format=state.log_format,
    )
    if state.log_directory:
        request["log_directory"] = state.log_directory
    reply_type, body = yield from _rpc(
        sys, state, machine, protocol.CREATE_FILTER_REQ, **request
    )
    if reply_type != protocol.CREATE_FILTER_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys,
            state,
            "filter '{0}' not created: {1}".format(filtername, body.get("status")),
        )
        return
    info = FilterInfo(
        filtername,
        machine,
        body["pid"],
        body["meter_host"],
        body["meter_port"],
        body["log_path"],
        filterfile=filterfile,
        descriptions=descriptions,
        templates=templates,
    )
    state.filters[filtername] = info
    state.filter_order.append(filtername)
    yield from _journal(
        sys,
        state,
        "filter",
        name=info.name,
        machine=info.machine,
        pid=info.pid,
        meter_host=info.meter_host,
        meter_port=info.meter_port,
        log_path=info.log_path,
        filterfile=info.filterfile,
        descriptions=info.descriptions,
        templates=info.templates,
    )
    yield from _emit(
        sys,
        state,
        "filter '{0}' ... created: identifier = {1}".format(filtername, info.pid),
    )


def cmd_newjob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: newjob <jobname> [<filtername>]")
        return
    jobname = args[0]
    if jobname in state.jobs:
        yield from _emit(sys, state, "job '{0}' already exists".format(jobname))
        return
    if len(args) > 1:
        info = state.filters.get(args[1])
        if info is None:
            yield from _emit(sys, state, "no filter '{0}'".format(args[1]))
            return
    else:
        info = state.default_filter()
        if info is None:
            yield from _emit(
                sys,
                state,
                "a job cannot be created if a filter has not been created",
            )
            return
    state.jobs[jobname] = Job(jobname, info.name, state.next_job_number)
    yield from _journal(
        sys,
        state,
        "newjob",
        name=jobname,
        filtername=info.name,
        number=state.next_job_number,
    )
    state.next_job_number += 1


def cmd_addprocess(sys, state, args):
    if len(args) < 3:
        yield from _emit(
            sys,
            state,
            "usage: addprocess <jobname> <machine> <processfile> [<parms>...]",
        )
        return
    jobname, machine, processfile = args[0], args[1], args[2]
    params = args[3:]
    job = state.jobs.get(jobname)
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(jobname))
        return
    info = state.filters[job.filtername]
    request = dict(
        filename=processfile,
        params=list(params),
        filter_host=info.meter_host,
        filter_port=info.meter_port,
        meter_flags=job.flags,
        jobname=jobname,
        procname=processfile,
    )
    reply_type, body = yield from _rpc(
        sys, state, machine, protocol.CREATE_REQ, **request
    )
    if reply_type != protocol.CREATE_REPLY and "ENOENT" in str(body.get("status")):
        # The executable is not on the target machine: copy it there
        # (Section 3.5.3) and try once more.
        try:
            yield sys.rcp(state.hostname, processfile, machine, processfile)
        except SyscallError as err:
            yield from _emit(
                sys,
                state,
                "process '{0}' not created: cannot copy '{1}' ({2})".format(
                    processfile, processfile, errno_name(err.errno)
                ),
            )
            return
        reply_type, body = yield from _rpc(
            sys, state, machine, protocol.CREATE_REQ, **request
        )
    if reply_type != protocol.CREATE_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys,
            state,
            "process '{0}' not created: {1}".format(processfile, body.get("status")),
        )
        return
    record = ProcessRecord(processfile, jobname, machine, body["pid"], states.NEW)
    record.flags = job.flags
    job.processes.append(record)
    yield from _journal(
        sys,
        state,
        "process",
        jobname=jobname,
        procname=record.procname,
        machine=machine,
        pid=record.pid,
        state=record.state,
        flags=record.flags,
    )
    yield from _emit(
        sys,
        state,
        "process '{0}' ... created: identifier = {1}".format(
            processfile, body["pid"]
        ),
    )


def cmd_acquire(sys, state, args):
    if len(args) != 3:
        yield from _emit(
            sys, state, "usage: acquire <jobname> <machine> <process identifier>"
        )
        return
    jobname, machine = args[0], args[1]
    try:
        pid = int(args[2])
    except ValueError:
        yield from _emit(sys, state, "bad process identifier '{0}'".format(args[2]))
        return
    job = state.jobs.get(jobname)
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(jobname))
        return
    info = state.filters[job.filtername]
    reply_type, body = yield from _rpc(
        sys,
        state,
        machine,
        protocol.ACQUIRE_REQ,
        pid=pid,
        meter_flags=job.flags,
        filter_host=info.meter_host,
        filter_port=info.meter_port,
    )
    if reply_type != protocol.ACQUIRE_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "process {0} not acquired: {1}".format(pid, body.get("status"))
        )
        return
    record = ProcessRecord(str(pid), jobname, machine, pid, states.ACQUIRED)
    record.flags = job.flags
    job.processes.append(record)
    yield from _journal(
        sys,
        state,
        "process",
        jobname=jobname,
        procname=record.procname,
        machine=machine,
        pid=pid,
        state=record.state,
        flags=record.flags,
    )
    yield from _emit(sys, state, "process {0} ... acquired".format(pid))


def cmd_setflags(sys, state, args):
    if len(args) < 2:
        yield from _emit(sys, state, "usage: setflags <jobname> <flag1> [...]")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    try:
        set_mask, clear_mask = mflags.flags_from_names(args[1:])
    except ValueError as err:
        yield from _emit(sys, state, str(err))
        return
    # "the set of active flags is the union of the two groups" --
    # resets must be explicit.
    job.flags = (job.flags | set_mask) & ~clear_mask
    _update_flag_order(job, args[1:])
    yield from _journal(
        sys,
        state,
        "flags",
        jobname=job.name,
        flags=job.flags,
        flag_order=list(job.flag_order),
    )
    yield from _emit(
        sys, state, "new job flags = {0}".format(" ".join(job.flag_order))
    )
    for record in job.processes:
        if record.state == states.KILLED:
            continue
        reply_type, body = yield from _rpc(
            sys,
            state,
            record.machine,
            protocol.SETFLAGS_REQ,
            pid=record.pid,
            flags=job.flags,
        )
        if reply_type == protocol.SETFLAGS_REPLY and protocol.is_ok(body):
            record.flags = job.flags
            yield from _emit(
                sys, state, "Process '{0}' : Flags set".format(record.procname)
            )
        else:
            yield from _emit(
                sys,
                state,
                "Process '{0}' : flags not set: {1}".format(
                    record.procname, body.get("status")
                ),
            )


def _update_flag_order(job, names):
    for raw in names:
        name = raw.lower()
        if name.startswith("-"):
            name = name[1:]
            if name == "all":
                job.flag_order = []
            elif name in job.flag_order:
                job.flag_order.remove(name)
        else:
            if name not in job.flag_order and name != "immediate":
                job.flag_order.append(name)


def cmd_startjob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: startjob <jobname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    for record in job.processes:
        if states.startable(record.state):
            reply_type, body = yield from _rpc(
                sys,
                state,
                record.machine,
                protocol.SIGNAL_REQ,
                pid=record.pid,
                sig=defs.SIGCONT,
            )
            if reply_type == protocol.SIGNAL_REPLY and protocol.is_ok(body):
                record.state = states.RUNNING
                yield from _journal_state(sys, state, job, record)
                yield from _emit(sys, state, "'{0}' started.".format(record.procname))
            else:
                yield from _emit(
                    sys,
                    state,
                    "'{0}' not started: {1}".format(
                        record.procname, body.get("status")
                    ),
                )
        else:
            yield from _emit(
                sys,
                state,
                "'{0}' cannot be started: it is {1}.".format(
                    record.procname, record.state
                ),
            )


def cmd_stopjob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: stopjob <jobname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    for record in job.processes:
        if states.stoppable(record.state):
            reply_type, body = yield from _rpc(
                sys,
                state,
                record.machine,
                protocol.SIGNAL_REQ,
                pid=record.pid,
                sig=defs.SIGSTOP,
            )
            if reply_type == protocol.SIGNAL_REPLY and protocol.is_ok(body):
                record.state = states.STOPPED
                yield from _journal_state(sys, state, job, record)
                yield from _emit(sys, state, "'{0}' stopped.".format(record.procname))
            else:
                yield from _emit(
                    sys,
                    state,
                    "'{0}' not stopped: {1}".format(
                        record.procname, body.get("status")
                    ),
                )
        elif record.state in (states.KILLED, states.ACQUIRED):
            continue  # "Processes that are killed or acquired are ignored."


def _remove_record(sys, state, job, record):
    """Shared by removejob/removeprocess: stopped processes are killed
    (Figure 4.2's stopped->killed edge); acquired processes only lose
    their meter connection."""
    if record.state == states.STOPPED:
        yield from _rpc(
            sys,
            state,
            record.machine,
            protocol.SIGNAL_REQ,
            pid=record.pid,
            sig=defs.SIGKILL,
        )
        record.state = states.KILLED
        yield from _journal_state(sys, state, job, record)
    elif record.state == states.ACQUIRED:
        yield from _rpc(
            sys, state, record.machine, protocol.UNMETER_REQ, pid=record.pid
        )
    yield from _emit(sys, state, "'{0}' removed".format(record.procname))


def cmd_removejob(sys, state, args):
    if not args:
        yield from _emit(sys, state, "usage: removejob <jobname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    blockers = [
        record for record in job.processes if not states.removable(record.state)
    ]
    if blockers:
        yield from _emit(
            sys,
            state,
            "job '{0}' not removed: process '{1}' is {2}".format(
                job.name, blockers[0].procname, blockers[0].state
            ),
        )
        return
    for record in job.processes:
        yield from _remove_record(sys, state, job, record)
    del state.jobs[job.name]
    yield from _journal(sys, state, "removejob", name=job.name)


def cmd_removeprocess(sys, state, args):
    if len(args) != 2:
        yield from _emit(sys, state, "usage: removeprocess <jobname> <procname>")
        return
    job = state.jobs.get(args[0])
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(args[0]))
        return
    record = job.find_process(args[1])
    if record is None:
        yield from _emit(
            sys, state, "no process '{0}' in job '{1}'".format(args[1], args[0])
        )
        return
    if not states.removable(record.state):
        yield from _emit(
            sys,
            state,
            "process '{0}' not removed: it is {1}".format(
                record.procname, record.state
            ),
        )
        return
    yield from _remove_record(sys, state, job, record)
    job.processes.remove(record)
    yield from _journal(
        sys,
        state,
        "removeprocess",
        jobname=job.name,
        procname=record.procname,
        machine=record.machine,
        pid=record.pid,
    )


def cmd_jobs(sys, state, args):
    if not args:
        if not state.jobs:
            yield from _emit(sys, state, "no jobs")
            return
        for job in sorted(state.jobs.values(), key=lambda j: j.number):
            yield from _emit(
                sys,
                state,
                "{0}: {1} (filter {2})".format(job.number, job.name, job.filtername),
            )
        return
    for jobname in args:
        job = state.jobs.get(jobname)
        if job is None:
            yield from _emit(sys, state, "no job '{0}'".format(jobname))
            continue
        dropped = yield from _job_drop_counts(sys, state, job)
        yield from _emit(sys, state, "job '{0}':".format(job.name))
        for record in job.processes:
            flag_names = " ".join(mflags.names_from_flags(record.flags)) or "none"
            line = "  {0} {1} '{2}' on {3} flags: {4}".format(
                record.pid,
                record.state,
                record.procname,
                record.machine,
                flag_names,
            )
            lost = dropped.get((record.machine, record.pid), 0)
            if lost:
                line += " dropped: {0}".format(lost)
            yield from _emit(sys, state, line)
        degraded = sorted(
            {
                record.machine
                for record in job.processes
                if state.health.is_degraded(record.machine)
            }
        )
        if degraded:
            yield from _emit(
                sys,
                state,
                "  degraded machines (meterdaemon not responding): "
                + " ".join(degraded),
            )
            for machine in degraded:
                entry = state.health.entry(machine)
                last = (
                    "never"
                    if entry.last_probe_ms is None
                    else "{0:.0f}ms".format(entry.last_probe_ms)
                )
                yield from _emit(
                    sys,
                    state,
                    "    {0}: {1} failure(s), last probe at {2}".format(
                        machine, entry.failures, last
                    ),
                )


def _job_drop_counts(sys, state, job):
    """Per-(machine, pid) dropped-event counts from the daemons'
    status RPC.  Degraded machines are skipped: the probe schedule,
    not a status call, decides when they are back."""
    dropped = {}
    for machine in sorted({record.machine for record in job.processes}):
        if state.health.is_degraded(machine):
            continue
        reply_type, body = yield from _rpc(
            sys, state, machine, protocol.STATUS_REQ
        )
        if reply_type != protocol.STATUS_REPLY or not protocol.is_ok(body):
            continue
        by_pid = body.get("dropped_by_pid", {})
        for record in job.processes:
            if record.machine != machine:
                continue
            # JSON round-trips dict keys as strings.
            count = by_pid.get(str(record.pid), 0)
            if count:
                dropped[(machine, record.pid)] = count
    return dropped


def cmd_getlog(sys, state, args):
    if len(args) != 2:
        yield from _emit(sys, state, "usage: getlog <filtername> <destfile>")
        return
    info = state.filters.get(args[0])
    if info is None:
        yield from _emit(sys, state, "no filter '{0}'".format(args[0]))
        return
    reply_type, body = yield from _rpc(
        sys, state, info.machine, protocol.GETLOG_REQ, path=info.log_path
    )
    if reply_type != protocol.GETLOG_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "getlog failed: {0}".format(body.get("status"))
        )
        return
    yield from guestlib.write_text(sys, args[1], body["content"])


def _find_job_process(sys, state, jobname, procname):
    job = state.jobs.get(jobname)
    if job is None:
        yield from _emit(sys, state, "no job '{0}'".format(jobname))
        return None
    record = job.find_process(procname)
    if record is None:
        yield from _emit(
            sys, state, "no process '{0}' in job '{1}'".format(procname, jobname)
        )
        return None
    if record.state in (states.KILLED, states.ACQUIRED):
        yield from _emit(
            sys,
            state,
            "process '{0}' is {1}: no I/O path".format(procname, record.state),
        )
        return None
    return record


def cmd_input(sys, state, args):
    """Send a line to a process' standard input through its daemon's
    I/O gateway (the reverse path of Section 3.5.2)."""
    if len(args) < 3:
        yield from _emit(sys, state, "usage: input <jobname> <procname> <word>...")
        return
    record = yield from _find_job_process(sys, state, args[0], args[1])
    if record is None:
        return
    reply_type, body = yield from _rpc(
        sys,
        state,
        record.machine,
        protocol.STDIN_REQ,
        pid=record.pid,
        data=" ".join(args[2:]) + "\n",
    )
    if reply_type != protocol.STDIN_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "input not delivered: {0}".format(body.get("status"))
        )


def cmd_stdinfile(sys, state, args):
    """Redirect a file into a process' standard input (Section 3.5.2:
    the file is copied to the process' machine and opened by its
    meterdaemon)."""
    if len(args) != 3:
        yield from _emit(
            sys, state, "usage: stdinfile <jobname> <procname> <filename>"
        )
        return
    record = yield from _find_job_process(sys, state, args[0], args[1])
    if record is None:
        return
    filename = args[2]
    if record.machine != state.hostname:
        try:
            yield sys.rcp(state.hostname, filename, record.machine, filename)
        except SyscallError as err:
            yield from _emit(
                sys,
                state,
                "cannot copy '{0}' to {1} ({2})".format(
                    filename, record.machine, errno_name(err.errno)
                ),
            )
            return
    reply_type, body = yield from _rpc(
        sys,
        state,
        record.machine,
        protocol.STDIN_REQ,
        pid=record.pid,
        path=filename,
    )
    if reply_type != protocol.STDIN_REPLY or not protocol.is_ok(body):
        yield from _emit(
            sys, state, "stdin not redirected: {0}".format(body.get("status"))
        )


def cmd_source(sys, state, args):
    if len(args) != 1:
        yield from _emit(sys, state, "usage: source <filename>")
        return
    if len(state.input_stack) >= MAX_SOURCE_DEPTH:
        yield from _emit(sys, state, "source nesting too deep (max 16)")
        return
    try:
        fd = yield sys.open(args[0], "r")
    except SyscallError as err:
        yield from _emit(
            sys, state, "cannot source '{0}': {1}".format(args[0], errno_name(err.errno))
        )
        return
    state.input_stack.append(_InputSource(fd, is_tty=False))


def cmd_sink(sys, state, args):
    if state.sink_fd is not None:
        yield sys.close(state.sink_fd)
        state.sink_fd = None
    if args:
        state.sink_fd = yield sys.open(args[0], "w")


# ----------------------------------------------------------------------
# Live analysis: stats and watch (repro.streaming)
# ----------------------------------------------------------------------


def _resolve_filter(sys, state, name):
    """``name`` (or the default filter when None); emits the error."""
    if name is not None:
        info = state.filters.get(name)
        if info is None:
            yield from _emit(sys, state, "no filter '{0}'".format(name))
        return info
    info = state.default_filter()
    if info is None:
        yield from _emit(sys, state, "no filters")
    return info


def _stream_query(sys, state, info, req_type, query):
    """One live-analysis RPC: controller -> daemon -> filter engine.
    Returns (engine reply dict, None) or (None, error text)."""
    reply_type, body = yield from _rpc(
        sys, state, info.machine, req_type, filtername=info.name, query=query
    )
    expected = protocol.REPLY_FOR.get(req_type)
    if reply_type != expected or not protocol.is_ok(body):
        return None, str(body.get("status"))
    result = body.get("result") or {}
    if result.get("status") != "ok":
        return None, str(result.get("reason", "engine error"))
    return result, None


def cmd_stats(sys, state, args):
    """Live statistics snapshot (or digest) from a filter's engine."""
    args = list(args)
    want_digest = bool(args) and args[-1] == "digest"
    if want_digest:
        args.pop()
    info = yield from _resolve_filter(sys, state, args[0] if args else None)
    if info is None:
        return
    query = {"op": "digest" if want_digest else "stats"}
    result, err = yield from _stream_query(
        sys, state, info, protocol.STATS_REQ, query
    )
    if result is None:
        yield from _emit(sys, state, "stats failed: {0}".format(err))
        return
    if want_digest:
        # One canonical JSON line: scriptable, and what the benchmark
        # diffs against the post-mortem twins.
        yield from _emit(
            sys, state, json.dumps(result.get("result"), sort_keys=True)
        )
        return
    for line in format_snapshot(result.get("result") or {}):
        yield from _emit(sys, state, line)


def _coerce_param(value):
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def _watch_add(sys, state, args):
    args = list(args)
    name = None
    if args and args[0] in state.filters:
        name = args.pop(0)
    if not args or args[0] not in QUERY_KINDS:
        yield from _emit(
            sys,
            state,
            "usage: watch add [<filtername>] <kind> [<k>=<v>...]   "
            "kinds: {0}".format(" ".join(QUERY_KINDS)),
        )
        return
    kind = args.pop(0)
    spec = {"kind": kind}
    for token in args:
        key, eq, value = token.partition("=")
        if not eq or not key:
            yield from _emit(
                sys, state, "bad watch parameter '{0}' (want k=v)".format(token)
            )
            return
        spec[key] = _coerce_param(value)
    info = yield from _resolve_filter(sys, state, name)
    if info is None:
        return
    wid = state.next_watch_id
    result, err = yield from _stream_query(
        sys,
        state,
        info,
        protocol.WATCH_REQ,
        {"op": "add", "id": wid, "spec": spec},
    )
    if result is None:
        yield from _emit(sys, state, "watch not registered: {0}".format(err))
        return
    state.next_watch_id = wid + 1
    state.watches[wid] = {"filtername": info.name, "spec": spec}
    yield from _journal(
        sys, state, "watch", wid=wid, filtername=info.name, spec=spec
    )
    yield from _emit(
        sys,
        state,
        "watch W{0} [{1}] registered on filter '{2}'".format(
            wid, kind, info.name
        ),
    )


def _watch_rm(sys, state, args):
    try:
        wid = int(args[0].lstrip("W")) if args else None
    except ValueError:
        wid = None
    if wid is None:
        yield from _emit(sys, state, "usage: watch rm <id>")
        return
    watch = state.watches.pop(wid, None)
    if watch is None:
        yield from _emit(sys, state, "no watch W{0}".format(wid))
        return
    yield from _journal(sys, state, "watch-rm", wid=wid)
    info = state.filters.get(watch["filtername"])
    if info is not None:
        yield from _stream_query(
            sys, state, info, protocol.WATCH_REQ, {"op": "remove", "id": wid}
        )
    yield from _emit(sys, state, "watch W{0} removed".format(wid))


def _watch_list(sys, state):
    if not state.watches:
        yield from _emit(sys, state, "no watches")
        return
    for wid in sorted(state.watches):
        watch = state.watches[wid]
        yield from _emit(
            sys,
            state,
            "W{0} on '{1}': {2}".format(
                wid,
                watch["filtername"],
                json.dumps(watch["spec"], sort_keys=True),
            ),
        )


def _watch_poll(sys, state):
    if not state.watches:
        yield from _emit(sys, state, "no watches")
        return
    fired = 0
    names = sorted({w["filtername"] for w in state.watches.values()})
    for name in names:
        info = state.filters.get(name)
        if info is None:
            continue
        result, err = yield from _stream_query(
            sys,
            state,
            info,
            protocol.WATCH_REQ,
            {"op": "poll", "since": state.watch_seqs.get(name, 0)},
        )
        if result is None:
            yield from _emit(
                sys, state, "watch poll failed on '{0}': {1}".format(name, err)
            )
            continue
        state.watch_seqs[name] = result.get("seq", 0)
        for firing in result.get("firings", []):
            fired += 1
            yield from _emit(sys, state, format_firing(firing))
    if not fired:
        yield from _emit(sys, state, "no new firings")


def cmd_watch(sys, state, args):
    """Continuous queries over the live record stream."""
    sub = args[0].lower() if args else "poll"
    rest = args[1:]
    if sub == "add":
        yield from _watch_add(sys, state, rest)
    elif sub in ("rm", "remove"):
        yield from _watch_rm(sys, state, rest)
    elif sub == "list":
        yield from _watch_list(sys, state)
    elif sub == "poll":
        yield from _watch_poll(sys, state)
    else:
        yield from _emit(
            sys, state, "usage: watch [add|poll|list|rm] ..."
        )


def _reregister_watches(sys, state, info, only_missing=False):
    """Re-subscribe this filter's watches to its engine.

    After a filter relaunch the replacement's engine replayed the log
    but has no queries and a fresh firing sequence, so every watch is
    re-added and the poll cursor rewound.  After a controller resume
    the engine may have survived intact; ``only_missing`` then asks it
    what it still holds and re-adds only what is gone (replacing a live
    query would discard its accumulated state)."""
    watched = {
        wid: w
        for wid, w in state.watches.items()
        if w["filtername"] == info.name
    }
    if not watched:
        return
    existing = set()
    if only_missing:
        result, __ = yield from _stream_query(
            sys, state, info, protocol.WATCH_REQ, {"op": "list"}
        )
        if result is not None:
            existing = {q.get("id") for q in result.get("queries", [])}
    else:
        state.watch_seqs[info.name] = 0
    for wid in sorted(watched):
        if wid in existing:
            continue
        yield from _stream_query(
            sys,
            state,
            info,
            protocol.WATCH_REQ,
            {"op": "add", "id": wid, "spec": watched[wid]["spec"]},
        )


def cmd_resume(sys, state, args):
    """Rebuild a crashed controller's session from its journal.

    Replays the journal's effect entries to recover filters, jobs and
    process records, then reconciles every machine: its daemon adopts
    the session's processes (re-registering them against THIS
    controller's notification port), dead processes are reported
    exactly once, dead filters are relaunched and meters repointed.
    """
    if state.filters or state.jobs:
        yield from _emit(
            sys,
            state,
            "resume: this controller already has session state "
            "(resume only into a fresh controller)",
        )
        return
    path = args[0] if args else journal.journal_path(state.log_directory)
    text = yield from guestlib.read_optional_file(sys, path)
    if text is None:
        yield from _emit(
            sys, state, "resume: no journal at '{0}'".format(path)
        )
        return
    replayed = journal.replay(journal.parse_journal(text))
    if replayed.clean_exit or not (replayed.filters or replayed.jobs):
        yield from _emit(sys, state, "resume: nothing to recover")
        return
    state.filters = replayed.filters
    state.filter_order = replayed.filter_order
    state.jobs = replayed.jobs
    state.next_job_number = replayed.next_job_number
    state.watches = replayed.watches
    state.next_watch_id = replayed.next_watch_id
    yield from _journal(sys, state, "resume")
    yield from _emit(
        sys,
        state,
        "resumed {0} filter(s) and {1} job(s) from '{2}'".format(
            len(state.filters), len(state.jobs), path
        ),
    )
    for machine in sorted(_watched_machines(state)):
        yield from _reconcile_machine(sys, state, machine)
    # Filters that survived the controller crash still hold their
    # queries; respawned ones were re-subscribed above.  Fill only the
    # gaps (and leave live query state alone).
    for name in list(state.filter_order):
        info = state.filters.get(name)
        if info is not None:
            yield from _reregister_watches(sys, state, info, only_missing=True)


def cmd_die(sys, state, args):
    if state.active_count() > 0 and not state.die_warned:
        state.die_warned = True
        yield from _emit(
            sys,
            state,
            "there are still active processes; repeat die to exit anyway",
        )
        return
    # "Upon exit, all executing filter processes are removed."
    for name in list(state.filter_order):
        info = state.filters[name]
        yield from _rpc(
            sys,
            state,
            info.machine,
            protocol.SIGNAL_REQ,
            pid=info.pid,
            sig=defs.SIGKILL,
        )
    # A clean exit truncates the recoverable session: resume after
    # this reports nothing to recover.
    yield from _journal(sys, state, "die")
    state.dead = True


_COMMANDS = {
    "help": cmd_help,
    "filter": cmd_filter,
    "newjob": cmd_newjob,
    "addprocess": cmd_addprocess,
    "add": cmd_addprocess,
    "acquire": cmd_acquire,
    "setflags": cmd_setflags,
    "startjob": cmd_startjob,
    "stopjob": cmd_stopjob,
    "removejob": cmd_removejob,
    "rmjob": cmd_removejob,
    "removeprocess": cmd_removeprocess,
    "jobs": cmd_jobs,
    "getlog": cmd_getlog,
    "source": cmd_source,
    "sink": cmd_sink,
    "input": cmd_input,
    "stdinfile": cmd_stdinfile,
    "stats": cmd_stats,
    "watch": cmd_watch,
    "resume": cmd_resume,
    "die": cmd_die,
    "exit": cmd_die,
    "bye": cmd_die,
}
