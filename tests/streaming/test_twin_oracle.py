"""The correctness oracle: the online fold and its post-mortem twins
must agree record for record, and the digests must be insensitive to
the legitimate emission-order differences between them."""

import json

import pytest

from repro.__main__ import main
from repro.analysis.trace import Trace
from repro.filtering.records import parse_trace
from repro.streaming import twins
from repro.streaming.twins import diff_digests, replay_engine

from tests.streaming.conftest import build_session, start_mixed_job, stats_digest


@pytest.fixture(scope="module")
def mixed_log():
    session = build_session(seed=21)
    start_mixed_job(session)
    session.settle()
    __, text = session.find_filter_log("f1")
    return text


@pytest.fixture(scope="module")
def records(mixed_log):
    return parse_trace(mixed_log)


def test_replay_matches_batch_analyses(records):
    assert len(records) > 200  # the workload really ran
    online = replay_engine(records).finalize().digest()
    batch = twins.batch_digest(Trace(list(records)))
    assert diff_digests(online, batch) == []
    for key in batch:
        assert online[key] == batch[key], key


def test_digest_survives_commit_order_permutation(records):
    """Interleaving across processes is arbitrary in the committed log;
    the digests must not depend on it.  Replaying the per-process
    streams concatenated (a radically different but causally valid
    commit order) must yield the same digests."""
    by_process = {}
    for record in records:
        by_process.setdefault(
            (record.get("machine"), record.get("pid")), []
        ).append(record)
    permuted = [r for stream in by_process.values() for r in stream]
    assert permuted != records  # genuinely reordered
    a = replay_engine(records).finalize().digest()
    b = replay_engine(permuted).finalize().digest()
    for key in ("records", "clock_digest", "pairs_digest", "totals",
                "per_process", "clocks_resolved"):
        assert a[key] == b[key], key


def test_engine_without_finalize_tracks_all_records(records):
    engine = replay_engine(records)
    assert engine.records == len(records)
    snap = engine.snapshot()
    assert snap["records"] == len(records)
    assert snap["totals"]["matched_pairs"] > 0


def test_cli_stats_and_watch_on_log_file(tmp_path, capsys, mixed_log):
    logfile = tmp_path / "f1.log"
    logfile.write_text(mixed_log, encoding="ascii")

    assert main(["stats", str(logfile)]) == 0
    out = capsys.readouterr().out
    assert "live statistics" in out and "pairs matched" in out

    assert main(["stats", str(logfile), "--digest", "yes"]) == 0
    cli_digest = json.loads(capsys.readouterr().out)
    want = replay_engine(parse_trace(mixed_log)).finalize().digest()
    assert cli_digest == json.loads(json.dumps(want))

    assert main(["watch", str(logfile), "rate",
                 "--threshold", "5", "--window", "1000"]) == 0
    out = capsys.readouterr().out
    assert "firing(s)" in out
    assert "WATCH W1 [rate]" in out  # this workload easily exceeds 5/s

    assert main(["watch", str(logfile), "bogus"]) == 1
    assert "usage" in capsys.readouterr().out

    assert main(["stats", str(tmp_path / "missing.log")]) == 1
    assert "stats:" in capsys.readouterr().out


def test_cli_top_level_help(capsys):
    assert main(["--help"]) == 0
    out = capsys.readouterr().out
    for verb in ("trace pack", "trace fsck", "stats", "watch", "--list"):
        assert verb in out


def test_live_digest_equals_both_twins(records):
    session = build_session(seed=21)
    start_mixed_job(session)
    session.settle()
    live = stats_digest(session)
    __, text = session.find_filter_log("f1")
    replayed = parse_trace(text)
    online = replay_engine(replayed).finalize().digest()
    batch = twins.batch_digest(Trace(list(replayed)))
    # live fold == offline replay == batch analysis, bit for bit
    # (the live engine never finalizes, so compare the pure-fold keys).
    for key in ("records", "clock_digest", "pairs_digest", "totals",
                "per_process"):
        assert live[key] == json.loads(json.dumps(online[key])), key
        assert live[key] == json.loads(json.dumps(batch[key])), key
