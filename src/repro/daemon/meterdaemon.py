"""The meterdaemon guest program (Section 3.5).

Main loop: "A meterdaemon spends most of its time listening for an IPC
connection request from a controller process" -- plus, here, watching
its children (termination notifications) and the per-process I/O
gateway sockets (Section 3.5.2).

Request handling is one-connection-per-exchange: accept, read one
request frame, execute, reply, close ("the stream connection between
the controller and a meterdaemon exists for the duration of a single
exchange of messages").
"""

from repro import guestlib
from repro.daemon import protocol
from repro.filtering.standard import log_path_for
from repro.kernel import defs
from repro.kernel.errno import SyscallError
from repro.metering import flags as mflags
from repro.streaming import protocol as streamproto

#: Well-known port every meterdaemon listens on.
METERDAEMON_PORT = 3425

#: Filter supervision: a supervised filter that dies without the
#: controller asking for it is relaunched after a short backoff, up to
#: the restart budget; then the daemon gives up and reports the death.
FILTER_RESTART_BUDGET = 3
FILTER_RESTART_BACKOFF_MS = 50.0
FILTER_RESTART_BACKOFF_CAP_MS = 400.0

#: Meter redial: when the kernel reports a broken meter connection
#: (select want_meter_loss) the daemon re-dials the filter so the
#: kernel can pump its resend window and drain orphaned batches.  The
#: path may still be severed, so attempts back off exponentially; the
#: budget keeps a never-healing partition from scheduling forever
#: (quiescence), and a controller REMETER can still close the gap
#: later.
METER_REDIAL_BUDGET = 8
METER_REDIAL_BACKOFF_MS = 25.0
METER_REDIAL_BACKOFF_CAP_MS = 400.0
METER_REDIAL_CONNECT_TIMEOUT_MS = 250.0


class _DaemonState:
    """Host-local bookkeeping for one meterdaemon."""

    def __init__(self):
        #: child pid -> {control (host, port), jobname, procname}
        self.children = {}
        #: gateway fd -> child pid (stdio forwarding)
        self.gateways = {}
        #: supervised filter pid -> relaunch spec (argv pieces, uid,
        #: control address, meter port, remaining restart budget)
        self.filters = {}
        #: [due time, spec] pairs for filters awaiting relaunch
        self.pending_restarts = []
        #: pid -> redial job for a broken meter connection: the kernel
        #: told us (select want_meter_loss) that a meter stream died
        #: with batches parked; we re-dial the filter with backoff
        #: until the path heals or the budget runs out.
        self.pending_redials = {}
        #: Boot epoch (sim time at startup), echoed in ping replies: a
        #: controller that never saw this daemon down can still detect
        #: that it was restarted behind its back and reconcile.
        self.boot_ms = None
        self.requests_served = 0


def meterdaemon(sys, argv):
    """Guest main.  argv: optionally [port]."""
    port = int(argv[0]) if argv else METERDAEMON_PORT
    state = _DaemonState()
    state.boot_ms = yield sys.gettimeofday()

    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", port))
    yield sys.listen(listen_fd, defs.SOMAXCONN)

    # Startup reconciliation: a predecessor daemon may have died
    # mid-episode, taking its redial bookkeeping with it while the
    # kernel still holds broken meters or spooled orphan batches.  The
    # kernel state, not the (lost) notification, is the ground truth.
    yield from _sweep_meter_state(sys, state)

    while True:
        # A filter awaiting relaunch or a meter awaiting redial puts a
        # deadline on the select; otherwise the daemon blocks
        # indefinitely (quiescence: an idle daemon schedules nothing).
        deadlines = [when for when, __ in state.pending_restarts]
        deadlines.extend(
            job["due"] for job in state.pending_redials.values()
        )
        timeout_ms = None
        if deadlines:
            now = yield sys.gettimeofday()
            timeout_ms = max(0.0, min(deadlines) - now)
        ready, events = yield sys.select(
            [listen_fd] + list(state.gateways),
            timeout_ms=timeout_ms,
            want_children=True,
            want_meter_loss=True,
        )
        # Drain I/O gateways before handling terminations so a child's
        # final output is not lost with its gateway.
        for fd in ready:
            if fd == listen_fd:
                conn, __ = yield sys.accept(listen_fd)
                yield from _serve_request(sys, state, conn)
                yield sys.close(conn)
            elif fd in state.gateways:
                yield from _forward_output(sys, state, fd)
        for event in events:
            if event.get("meter_lost"):
                yield from _note_meter_loss(sys, state, event)
            else:
                yield from _report_termination(sys, state, event)
        if state.pending_restarts:
            now = yield sys.gettimeofday()
            due_now = [
                item for item in state.pending_restarts if item[0] <= now
            ]
            state.pending_restarts = [
                item for item in state.pending_restarts if item[0] > now
            ]
            for __, spec in due_now:
                yield from _relaunch_filter(sys, state, spec)
        if state.pending_redials:
            now = yield sys.gettimeofday()
            for key in sorted(state.pending_redials, key=str):
                job = state.pending_redials.get(key)
                if job is not None and job["due"] <= now:
                    yield from _redial_meter(sys, state, job)


# ----------------------------------------------------------------------
# Notifications (daemon -> controller)
# ----------------------------------------------------------------------


#: Notification delivery policy: a termination or output report is
#: retried across transient failures (controller briefly unreachable,
#: partition healing) before the daemon gives up on it.
NOTIFY_ATTEMPTS = 4
NOTIFY_BACKOFF_MS = 25.0
NOTIFY_BACKOFF_CAP_MS = 200.0
NOTIFY_CONNECT_TIMEOUT_MS = 1000.0


def _notify_controller(sys, address, payload):
    """Connect to a controller's notification socket and send one frame.

    Returns True if the frame was sent.  Transient connection failures
    are retried with capped, jittered exponential backoff; hard errors
    (the controller is really gone) abandon the notification, since
    there is nobody left to tell.
    """
    host, port = address
    delay = NOTIFY_BACKOFF_MS
    for attempt in range(NOTIFY_ATTEMPTS):
        fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        try:
            yield sys.connect(fd, (host, port), NOTIFY_CONNECT_TIMEOUT_MS)
            yield from guestlib.send_frame(sys, fd, payload)
            yield sys.close(fd)
            return True
        except SyscallError as err:
            yield sys.close(fd)
            if err.errno not in guestlib.TRANSIENT_ERRNOS:
                return False  # controller gone; nothing useful to do
            if attempt + 1 < NOTIFY_ATTEMPTS:
                yield from guestlib.backoff_sleep(sys, delay)
                delay = min(delay * 2.0, NOTIFY_BACKOFF_CAP_MS)
    return False


def _report_termination(sys, state, event):
    """SIGCHLD path: tell the responsible controller (Section 3.5.1).

    A supervised filter that dies unexpectedly is not reported dead:
    its relaunch is scheduled instead, and the controller hears a
    FILTER_RESTART_NOTIFY once the replacement is up.  Only when the
    restart budget is exhausted does the death become a termination
    report.
    """
    child = state.children.pop(event["pid"], None)
    if child is None:
        return
    for fd, pid in list(state.gateways.items()):
        if pid == event["pid"]:
            yield sys.close(fd)
            del state.gateways[fd]
    spec = state.filters.pop(event["pid"], None)
    reason = event["reason"]
    if spec is not None:
        if spec["restarts_left"] > 0:
            spec["restarts_left"] -= 1
            now = yield sys.gettimeofday()
            state.pending_restarts.append([now + spec["backoff_ms"], spec])
            spec["backoff_ms"] = min(
                spec["backoff_ms"] * 2.0, FILTER_RESTART_BACKOFF_CAP_MS
            )
            return
        reason = "{0} (filter restart budget exhausted)".format(reason)
    hostname = yield sys.hostname()
    payload = protocol.encode(
        protocol.TERMINATION_NOTIFY,
        pid=event["pid"],
        machine=hostname,
        reason=reason,
        status=event["status"],
        jobname=child.get("jobname"),
        procname=child.get("procname"),
    )
    yield from _notify_controller(sys, child["control"], payload)


def _relaunch_filter(sys, state, spec):
    """Bring a crashed filter back: fresh meter socket, same argv, same
    log path (the filter recovers committed batch sequences from the
    log it extends), then tell the controller about the new incarnation
    so it can re-point meter connections."""
    old_pid = spec["pid"]
    old_port = spec["meter_port"]
    try:
        meter_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
        yield sys.bind(meter_fd, ("", 0))
        yield sys.listen(meter_fd, defs.SOMAXCONN)
        name = yield sys.getsockname(meter_fd)
        argv = [
            spec["filtername"],
            spec["log_path"],
            spec["descriptions"],
            spec["templates"],
        ]
        pid = yield sys.forkexec(
            spec["filterfile"],
            argv=argv,
            stdio_fd=meter_fd,
            start=True,
            uid=spec["uid"],
        )
        yield sys.close(meter_fd)
    except SyscallError as err:
        # Relaunch impossible (program file gone, no ports): give up
        # and report the filter dead so the controller can react.
        hostname = yield sys.hostname()
        payload = protocol.encode(
            protocol.TERMINATION_NOTIFY,
            pid=old_pid,
            machine=hostname,
            reason="filter relaunch failed: {0}".format(err),
            status=-1,
            jobname=None,
            procname=spec["filtername"],
        )
        yield from _notify_controller(sys, spec["control"], payload)
        return
    spec["pid"] = pid
    spec["meter_port"] = name.port
    state.filters[pid] = spec
    state.children[pid] = {
        "control": spec["control"],
        "jobname": None,
        "procname": spec["filtername"],
    }
    hostname = yield sys.hostname()
    payload = protocol.encode(
        protocol.FILTER_RESTART_NOTIFY,
        filtername=spec["filtername"],
        pid=pid,
        old_pid=old_pid,
        machine=hostname,
        meter_host=hostname,
        meter_port=name.port,
        old_port=old_port,
        restarts_left=spec["restarts_left"],
    )
    yield from _notify_controller(sys, spec["control"], payload)


# ----------------------------------------------------------------------
# Meter-connection supervision (self-healing data path)
# ----------------------------------------------------------------------


def _arm_redial(state, now, key, pid, host, port):
    state.pending_redials[key] = {
        "key": key,
        "pid": pid,
        "host": host,
        "port": port,
        "attempts_left": METER_REDIAL_BUDGET,
        "backoff_ms": METER_REDIAL_BACKOFF_MS,
        "due": now + METER_REDIAL_BACKOFF_MS,
    }


def _note_meter_loss(sys, state, event):
    """The kernel reports a dead meter connection.  The controller
    cannot be relied on to notice: its health RPCs run over its own
    paths, and a partition can sever kernel->filter while leaving
    controller->daemon intact.  Queue a redial; a repeat loss for the
    same pid re-targets and re-arms the existing job."""
    now = yield sys.gettimeofday()
    _arm_redial(
        state, now, event["pid"], event["pid"], event["host"], event["port"]
    )


def _sweep_meter_state(sys, state):
    """Seed redial jobs from kernel meter state: live processes on a
    broken connection, plus destinations with undelivered orphan
    batches (their process died; only a drain can ship them).  Run at
    startup -- the notification for an episode in progress went to a
    daemon that no longer exists."""
    stats = yield sys.meterstat()
    disconnected = stats.get("disconnected", {})
    parked = stats.get("orphans_parked", {})
    if not disconnected and not parked:
        return
    now = yield sys.gettimeofday()
    covered = set()
    for pid in sorted(disconnected):
        host, port = disconnected[pid]
        covered.add((host, port))
        _arm_redial(state, now, pid, pid, host, port)
    for key in sorted(parked):
        host, __, port = key.rpartition(":")
        if (host, int(port)) in covered:
            continue
        _arm_redial(state, now, "drain:" + key, None, host, int(port))


def _redial_meter(sys, state, job):
    """One redial attempt: if the kernel still wants this destination
    (or holds orphan batches spooled for it), connect a fresh meter
    socket, reinstall it with setmeter (the kernel then retransmits its
    window; the filter dedups), and drain any orphans.  Transient
    connect failures -- the partition has not healed yet -- reschedule
    with backoff until the budget is spent."""
    pid = job["pid"]
    host, port = job["host"], job["port"]
    stats = yield sys.meterstat()
    still_wanted = (
        pid is not None
        and stats.get("disconnected", {}).get(pid) == [host, port]
    )
    parked = stats.get("orphans_parked", {}).get(
        "{0}:{1}".format(host, port), 0
    )
    if not still_wanted and not parked:
        # Re-aimed elsewhere (REMETER won the race) or nothing left to
        # deliver: the episode is over.
        state.pending_redials.pop(job["key"], None)
        return
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    try:
        yield sys.connect(fd, (host, port), METER_REDIAL_CONNECT_TIMEOUT_MS)
    except SyscallError as err:
        yield sys.close(fd)
        job["attempts_left"] -= 1
        if (
            err.errno in guestlib.TRANSIENT_ERRNOS
            and job["attempts_left"] > 0
        ):
            job["backoff_ms"] = min(
                job["backoff_ms"] * 2.0, METER_REDIAL_BACKOFF_CAP_MS
            )
            now = yield sys.gettimeofday()
            job["due"] = now + job["backoff_ms"]
        else:
            state.pending_redials.pop(job["key"], None)
        return
    if still_wanted:
        try:
            yield sys.setmeter(pid, mflags.NO_CHANGE, fd)
        except SyscallError:
            pass  # the process died in the gap; the drain below covers it
    if parked:
        yield sys.meterdrain(fd, [port])
    yield sys.close(fd)
    state.pending_redials.pop(job["key"], None)


def _forward_output(sys, state, fd):
    """Relay a child's standard output to its controller (3.5.2)."""
    pid = state.gateways[fd]
    data = yield sys.read(fd, 2048)
    child = state.children.get(pid)
    if child is None:
        return
    hostname = yield sys.hostname()
    payload = protocol.encode(
        protocol.OUTPUT_NOTIFY,
        pid=pid,
        machine=hostname,
        procname=child.get("procname"),
        data=data.decode("ascii", "replace"),
    )
    yield from _notify_controller(sys, child["control"], payload)


# ----------------------------------------------------------------------
# Request dispatch
# ----------------------------------------------------------------------


def _serve_request(sys, state, conn):
    try:
        payload = yield from guestlib.recv_frame(sys, conn)
    except SyscallError:
        return  # requester's machine died mid-request
    if payload is None:
        return
    state.requests_served += 1
    try:
        msg_type, body = protocol.decode(payload)
        handler = _HANDLERS.get(msg_type)
        if handler is None:
            reply = protocol.error_reply("unknown request type %r" % msg_type)
        else:
            reply = yield from handler(sys, state, body)
    except SyscallError as err:
        reply = protocol.error_reply(str(err))
    except Exception as err:  # malformed frame/body: survive it
        reply = protocol.error_reply("bad request: %s" % err)
    # Every reply carries this daemon's boot epoch: the controller
    # compares it across exchanges to catch a daemon that died and was
    # replaced entirely between two of its heartbeats.
    reply = protocol.stamp(reply, boot=state.boot_ms)
    try:
        yield from guestlib.send_frame(sys, conn, reply)
    except SyscallError:
        pass  # requester hung up before the reply; nothing to do


def _check_account(sys, uid):
    allowed = yield sys.hasaccount(uid)
    if not allowed:
        raise SyscallError(1, "uid %d has no account on this machine" % uid)


def _connect_meter_socket(sys, filter_host, filter_port):
    """Create the kernel end of a meter connection: a stream socket in
    the Internet domain, connected to the filter (Section 4.1)."""
    fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.connect(fd, (filter_host, filter_port))
    return fd


def _handle_create(sys, state, body):
    """Type 11: create a (suspended) metered process."""
    uid = body["uid"]
    yield from _check_account(sys, uid)
    filename = body["filename"]

    # The I/O gateway: a local datagram pair, one end the child's stdio
    # (Section 3.5.2: datagrams "are reliable when used within a single
    # machine").
    gw_daemon, gw_child = yield sys.socketpair(defs.AF_UNIX, defs.SOCK_DGRAM)
    pid = yield sys.forkexec(
        filename,
        argv=body.get("params", []),
        stdio_fd=gw_child,
        start=False,
        uid=uid,
    )
    yield sys.close(gw_child)

    if body.get("filter_host"):
        meter_fd = yield from _connect_meter_socket(
            sys, body["filter_host"], body["filter_port"]
        )
        yield sys.setmeter(pid, body.get("meter_flags", 0), meter_fd)
        yield sys.close(meter_fd)

    state.children[pid] = {
        "control": (body["control_host"], body["control_port"]),
        "jobname": body.get("jobname"),
        "procname": body.get("procname"),
    }
    state.gateways[gw_daemon] = pid
    return protocol.encode(protocol.CREATE_REPLY, pid=pid, status=protocol.OK)


def _handle_create_filter(sys, state, body):
    """Type 12: create a filter process.

    The daemon binds the meter listening socket and installs it as the
    filter's standard input, then reports the socket's port so the
    controller can hand (literal host, port) to other daemons
    (Section 3.5.4).
    """
    uid = body["uid"]
    yield from _check_account(sys, uid)
    meter_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(meter_fd, ("", 0))
    yield sys.listen(meter_fd, defs.SOMAXCONN)
    name = yield sys.getsockname(meter_fd)

    filtername = body["filtername"]
    log_path = log_path_for(
        filtername,
        directory=body.get("log_directory"),
        log_format=body.get("log_format", "text"),
    )
    argv = [
        filtername,
        log_path,
        body.get("descriptions", "descriptions"),
        body.get("templates", "templates"),
    ]
    pid = yield sys.forkexec(
        body.get("filterfile", "filter"),
        argv=argv,
        stdio_fd=meter_fd,
        start=True,
        uid=uid,
    )
    yield sys.close(meter_fd)
    state.children[pid] = {
        "control": (body["control_host"], body["control_port"]),
        "jobname": None,
        "procname": filtername,
    }
    state.filters[pid] = {
        "pid": pid,
        "filtername": filtername,
        "filterfile": body.get("filterfile", "filter"),
        "log_path": log_path,
        "descriptions": body.get("descriptions", "descriptions"),
        "templates": body.get("templates", "templates"),
        "uid": uid,
        "control": (body["control_host"], body["control_port"]),
        "meter_port": name.port,
        "restarts_left": FILTER_RESTART_BUDGET,
        "backoff_ms": FILTER_RESTART_BACKOFF_MS,
    }
    hostname = yield sys.hostname()
    return protocol.encode(
        protocol.CREATE_FILTER_REPLY,
        pid=pid,
        status=protocol.OK,
        meter_host=hostname,
        meter_port=name.port,
        log_path=log_path,
    )


def _require_same_user(sys, uid, pid):
    stat = yield sys.procstat(pid)
    if uid != 0 and stat["uid"] != uid:
        raise SyscallError(1, "process %d belongs to uid %d" % (pid, stat["uid"]))
    return stat


def _handle_setflags(sys, state, body):
    """Type 13: change a process's meter flags."""
    yield from _require_same_user(sys, body["uid"], body["pid"])
    yield sys.setmeter(body["pid"], body["flags"], mflags.NO_CHANGE)
    return protocol.encode(protocol.SETFLAGS_REPLY, status=protocol.OK)


def _handle_signal(sys, state, body):
    """Type 14: start/stop/kill via a signal.

    A SIGKILL aimed at a supervised filter is a deliberate removal
    (controller exit, removejob): the supervision entry is dropped
    first so the death is reported, not answered with a relaunch.
    """
    yield from _require_same_user(sys, body["uid"], body["pid"])
    if body["sig"] == defs.SIGKILL:
        state.filters.pop(body["pid"], None)
    yield sys.kill(body["pid"], body["sig"])
    return protocol.encode(protocol.SIGNAL_REPLY, status=protocol.OK)


def _handle_acquire(sys, state, body):
    """Type 15: meter an already-running process (Section 4.3 acquire).

    "no changes are made to the handling of the processes' I/O ...
    monitoring is transparent to the executing processes."
    """
    uid = body["uid"]
    yield from _check_account(sys, uid)
    yield from _require_same_user(sys, uid, body["pid"])
    meter_fd = yield from _connect_meter_socket(
        sys, body["filter_host"], body["filter_port"]
    )
    yield sys.setmeter(body["pid"], body.get("meter_flags", 0), meter_fd)
    yield sys.close(meter_fd)
    return protocol.encode(protocol.ACQUIRE_REPLY, status=protocol.OK)


def _handle_unmeter(sys, state, body):
    """Type 16: take down a process's meter connection (removejob of an
    acquired process: it "will not continue to be metered ... but the
    process continues to execute")."""
    yield from _require_same_user(sys, body["uid"], body["pid"])
    yield sys.setmeter(body["pid"], mflags.NONE, mflags.SOCK_NONE)
    return protocol.encode(protocol.UNMETER_REPLY, status=protocol.OK)


def _handle_getlog(sys, state, body):
    """Type 17: return a filter log file's content."""
    content = yield from guestlib.read_whole_file(sys, body["path"])
    return protocol.encode(
        protocol.GETLOG_REPLY, status=protocol.OK, content=content
    )


#: Largest single stdin datagram pushed into a child's gateway.
_STDIN_CHUNK = 512


def _gateway_for(state, pid):
    for fd, child_pid in state.gateways.items():
        if child_pid == pid:
            return fd
    return None


def _handle_stdin(sys, state, body):
    """Type 25: standard input for a child (Section 3.5.2).

    Two variants: ``data`` carries literal user input ("The reverse
    path is traversed when sending standard input from the user to the
    process"); ``path`` names a local file that the daemon opens and
    redirects into the process ("The file is then opened by the
    meterdaemon, which redirects to it the standard input").
    """
    pid = body["pid"]
    gw_fd = _gateway_for(state, pid)
    if gw_fd is None:
        raise SyscallError(3, "no gateway for pid %d" % pid)
    if body.get("path") is not None:
        content = yield from guestlib.read_whole_file(sys, body["path"])
        data = content.encode("ascii")
    else:
        data = body.get("data", "").encode("ascii")
    for start in range(0, len(data), _STDIN_CHUNK):
        yield sys.write(gw_fd, data[start : start + _STDIN_CHUNK])
    return protocol.encode(protocol.STDIN_REPLY, status=protocol.OK)


def _handle_ping(sys, state, body):
    """Type 27: liveness probe (controller heartbeat).  Deliberately
    does almost nothing; the serve loop stamps the reply with the boot
    epoch, which is what lets the controller notice a daemon that was
    restarted behind its back."""
    now = yield sys.gettimeofday()
    return protocol.encode(
        protocol.PING_REPLY,
        status=protocol.OK,
        time=now,
        children=len(state.children),
        filters=len(state.filters),
        requests_served=state.requests_served,
    )


def _handle_status(sys, state, body):
    """Type 32: daemon census plus kernel metering-loss counters.

    ``dropped_by_pid`` comes from meterstat(2) (the daemon runs as
    root), so the controller can surface per-process event loss in
    ``jobs`` without any new kernel/controller path.
    """
    stats = yield sys.meterstat()
    return protocol.encode(
        protocol.STATUS_REPLY,
        status=protocol.OK,
        children=[
            {
                "pid": pid,
                "jobname": info.get("jobname"),
                "procname": info.get("procname"),
            }
            for pid, info in sorted(state.children.items())
        ],
        filters=[
            {
                "pid": pid,
                "filtername": spec["filtername"],
                "meter_port": spec["meter_port"],
                "restarts_left": spec["restarts_left"],
            }
            for pid, spec in sorted(state.filters.items())
        ],
        events_recorded=stats["events_recorded"],
        events_dropped=stats["events_dropped"],
        dropped_by_pid=stats["dropped_by_pid"],
        orphan_batches=stats["orphan_batches"],
        requests_served=state.requests_served,
    )


def _handle_remeter(sys, state, body):
    """Type 34: re-point meter connections at a relaunched filter.

    For every listed (pid, flags) still alive, a fresh meter socket is
    connected and installed with setmeter -- the kernel then
    retransmits its unacknowledged batch window, which the filter
    dedups.  Batches the kernel spooled for processes that died while
    the filter was down are redelivered with meterdrain(2) against the
    filter's previous port numbers.
    """
    uid = body["uid"]
    yield from _check_account(sys, uid)
    remetered, dead = [], []
    for record in body.get("records", []):
        pid = record["pid"]
        try:
            yield from _require_same_user(sys, uid, pid)
            meter_fd = yield from _connect_meter_socket(
                sys, body["filter_host"], body["filter_port"]
            )
            yield sys.setmeter(pid, record.get("flags", 0), meter_fd)
            yield sys.close(meter_fd)
        except SyscallError:
            dead.append(pid)
            continue
        remetered.append(pid)
    drained = 0
    old_ports = [int(port) for port in body.get("old_ports", [])]
    if old_ports:
        drain_fd = yield from _connect_meter_socket(
            sys, body["filter_host"], body["filter_port"]
        )
        drained = yield sys.meterdrain(drain_fd, old_ports)
        yield sys.close(drain_fd)
    return protocol.encode(
        protocol.REMETER_REPLY,
        status=protocol.OK,
        remetered=remetered,
        dead=dead,
        drained=drained,
    )


def _handle_adopt(sys, state, body):
    """Type 36: re-register children after a daemon or controller
    restart (the census behind the controller's ``resume``).

    Each listed child still alive is adopted -- reparented to this
    daemon so its termination report arrives here, and re-recorded with
    the requesting controller's (new) notification address.  Dead pids
    are reported back so the controller can mark them killed.  Filters
    are re-entered under supervision with a fresh restart budget.
    """
    uid = body["uid"]
    yield from _check_account(sys, uid)
    control = (body["control_host"], body["control_port"])
    alive, dead = [], []
    for child in body.get("children", []):
        pid = child["pid"]
        try:
            yield sys.reparent(pid)
        except SyscallError:
            dead.append(pid)
            continue
        state.children[pid] = {
            "control": control,
            "jobname": child.get("jobname"),
            "procname": child.get("procname"),
        }
        alive.append(pid)
    filters_alive, filters_dead = [], []
    for info in body.get("filters", []):
        pid = info["pid"]
        try:
            yield sys.reparent(pid)
        except SyscallError:
            filters_dead.append(info["filtername"])
            continue
        state.children[pid] = {
            "control": control,
            "jobname": None,
            "procname": info["filtername"],
        }
        state.filters[pid] = {
            "pid": pid,
            "filtername": info["filtername"],
            "filterfile": info.get("filterfile", "filter"),
            "log_path": info["log_path"],
            "descriptions": info.get("descriptions", "descriptions"),
            "templates": info.get("templates", "templates"),
            "uid": uid,
            "control": control,
            "meter_port": info["meter_port"],
            "restarts_left": FILTER_RESTART_BUDGET,
            "backoff_ms": FILTER_RESTART_BACKOFF_MS,
        }
        filters_alive.append(info["filtername"])
    return protocol.encode(
        protocol.ADOPT_REPLY,
        status=protocol.OK,
        alive=alive,
        dead=dead,
        filters_alive=filters_alive,
        filters_dead=filters_dead,
    )


#: How long the daemon waits for the filter engine's reply before
#: reporting the query failed (the filter answers between meter waits,
#: so this only expires when the filter is wedged or dying).
QUERY_REPLY_TIMEOUT_MS = 2000.0


def _find_filter_spec(state, filtername):
    for spec in state.filters.values():
        if spec["filtername"] == filtername:
            return spec
    return None


def _filter_query(sys, state, body):
    """Relay one live-analysis query to the named filter's streaming
    engine, over the filter's own meter port (so the query reaches
    exactly the incarnation currently committing records)."""
    spec = _find_filter_spec(state, body.get("filtername"))
    if spec is None:
        raise SyscallError(
            3, "no filter named %r on this machine" % body.get("filtername")
        )
    hostname = yield sys.hostname()
    fd = yield from _connect_meter_socket(sys, hostname, spec["meter_port"])
    try:
        yield sys.write(fd, streamproto.encode_query(body.get("query") or {}))
        payload = yield from guestlib.recv_frame_timeout(
            sys, fd, QUERY_REPLY_TIMEOUT_MS
        )
    finally:
        yield sys.close(fd)
    return streamproto.parse_reply(payload)


def _handle_stats(sys, state, body):
    """Type 39: live statistics snapshot / digest from a filter."""
    result = yield from _filter_query(sys, state, body)
    return protocol.encode(
        protocol.STATS_REPLY, status=protocol.OK, result=result
    )


def _handle_watch(sys, state, body):
    """Type 41: continuous-query management (add/remove/poll/list)."""
    result = yield from _filter_query(sys, state, body)
    return protocol.encode(
        protocol.WATCH_REPLY, status=protocol.OK, result=result
    )


_HANDLERS = {
    protocol.CREATE_REQ: _handle_create,
    protocol.CREATE_FILTER_REQ: _handle_create_filter,
    protocol.SETFLAGS_REQ: _handle_setflags,
    protocol.SIGNAL_REQ: _handle_signal,
    protocol.ACQUIRE_REQ: _handle_acquire,
    protocol.UNMETER_REQ: _handle_unmeter,
    protocol.GETLOG_REQ: _handle_getlog,
    protocol.STDIN_REQ: _handle_stdin,
    protocol.PING_REQ: _handle_ping,
    protocol.STATUS_REQ: _handle_status,
    protocol.REMETER_REQ: _handle_remeter,
    protocol.ADOPT_REQ: _handle_adopt,
    protocol.STATS_REQ: _handle_stats,
    protocol.WATCH_REQ: _handle_watch,
}
