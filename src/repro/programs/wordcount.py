"""Distributed word count: scatter text chunks to mappers, gather
partial counts at a reducer.

A two-level tree workload (coordinator -> mappers -> reducer): a more
realistic data-processing computation for the structural and
parallelism analyses than the micro-benchmarks, and a natural
demonstration of measuring a "real job" with the monitor.
"""

import json

from repro import guestlib
from repro.kernel import defs


def count_words(text):
    """The reference counting function (pure; used by tests too)."""
    counts = {}
    for word in text.split():
        word = word.strip(".,;:!?").lower()
        if word:
            counts[word] = counts.get(word, 0) + 1
    return counts


def merge_counts(into, other):
    for word, count in other.items():
        into[word] = into.get(word, 0) + count
    return into


def wc_coordinator(sys, argv):
    """argv: [port, nmappers, textfile, reducer_host, reducer_port].

    Reads the input file, splits it into nmappers chunks by lines,
    ships one chunk to each mapper, then waits for the reducer's final
    tally and prints the top words.
    """
    port = int(argv[0])
    nmappers = int(argv[1])
    textfile = argv[2]
    reducer_host = argv[3]
    reducer_port = int(argv[4])

    text = yield from guestlib.read_whole_file(sys, textfile)
    lines = text.splitlines()
    chunks = [
        "\n".join(lines[i::nmappers]) for i in range(nmappers)
    ]

    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", port))
    yield sys.listen(listen_fd, defs.SOMAXCONN)
    for __ in range(nmappers):
        conn, __peer = yield sys.accept(listen_fd)
        chunk = chunks.pop()
        yield from guestlib.send_json(
            sys,
            conn,
            {
                "text": chunk,
                "reducer_host": reducer_host,
                "reducer_port": reducer_port,
            },
        )
        yield sys.close(conn)

    # Wait for the reducer's final answer.
    result_fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (reducer_host, reducer_port + 1)
    )
    final = yield from guestlib.recv_json(sys, result_fd)
    yield sys.close(result_fd)
    top = sorted(final.items(), key=lambda kv: (-kv[1], kv[0]))[:3]
    summary = ", ".join("{0}={1}".format(w, c) for w, c in top)
    yield sys.write(1, ("top words: " + summary + "\n").encode("ascii"))
    yield sys.exit(0)


def wc_mapper(sys, argv):
    """argv: [coordinator_host, port] -- fetch a chunk, count, send the
    partial counts to the reducer."""
    host = argv[0]
    port = int(argv[1])
    fd = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM, (host, port)
    )
    task = yield from guestlib.recv_json(sys, fd)
    yield sys.close(fd)
    counts = count_words(task["text"])
    # Work proportional to the words counted.
    yield sys.compute(0.2 * max(1, sum(counts.values())))
    out = yield from guestlib.connect_retry(
        sys, defs.AF_INET, defs.SOCK_STREAM,
        (task["reducer_host"], task["reducer_port"]),
    )
    yield from guestlib.send_json(sys, out, counts)
    yield sys.close(out)
    yield sys.exit(0)


def wc_reducer(sys, argv):
    """argv: [port, nmappers] -- merge partials, serve the final tally
    on port+1."""
    port = int(argv[0])
    nmappers = int(argv[1])
    listen_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(listen_fd, ("", port))
    yield sys.listen(listen_fd, defs.SOMAXCONN)
    total = {}
    for __ in range(nmappers):
        conn, __peer = yield sys.accept(listen_fd)
        partial = yield from guestlib.recv_json(sys, conn)
        merge_counts(total, partial)
        yield sys.compute(0.5)
        yield sys.close(conn)
    yield sys.close(listen_fd)

    result_fd = yield sys.socket(defs.AF_INET, defs.SOCK_STREAM)
    yield sys.bind(result_fd, ("", port + 1))
    yield sys.listen(result_fd, 1)
    conn, __peer = yield sys.accept(result_fd)
    yield from guestlib.send_json(sys, conn, total)
    yield sys.close(conn)
    yield sys.exit(0)
